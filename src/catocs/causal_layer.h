// Causal delivery (cbcast): the Birman–Schiper–Stephenson vector-clock delay
// queue. Stage 1 of the delivery cascade — a message leaves this layer only
// when everything that happens-before it has been causally delivered here.

#ifndef REPRO_SRC_CATOCS_CAUSAL_LAYER_H_
#define REPRO_SRC_CATOCS_CAUSAL_LAYER_H_

#include <cstdint>
#include <deque>
#include <set>
#include <utility>
#include <vector>

#include "src/mem/pool.h"

#include "src/catocs/layer.h"
#include "src/catocs/vector_clock.h"

namespace catocs {

class CausalLayer : public OrderingLayer {
 public:
  explicit CausalLayer(GroupCore* core) : OrderingLayer(core) { core->causal = this; }

  const char* name() const override { return "causal"; }

  // Stamps the vector timestamp: the delivered-vector with our own entry
  // advanced to this send — one contiguous copy, no per-entry churn.
  void OnSend(GroupData& data) override;
  bool OnReceive(MemberId src, uint32_t port, const net::PayloadPtr& payload) override;
  void TryDeliver() override { TryDeliverPending(); }

  // Allocates the per-sender sequence number for an outgoing ordered send.
  uint64_t AllocateSendSeq() { return ++send_seq_; }
  // Highest sequence allocated so far (the flow controller's credit formula
  // reads send_seq − stable floor).
  uint64_t send_seq() const { return send_seq_; }

  // Entry point for a data message (local self-delivery, network arrival, or
  // view-change redistribution): observes piggybacked acks, dedups, queues,
  // and drives the cascade as far as it will go. `observe_acks=false` lets
  // the batch unpacker observe one ack vector per frame instead of one per
  // constituent (ack vectors are monotone along a sender's stream, so the
  // last one subsumes the rest).
  //
  // `from` matters only on the overlay path: the link the frame arrived on
  // (or self for an origin send), so forward-on-delivery floods to every
  // overlay neighbor *except* that link. 0 — the default, used by the
  // view-install redistribution path — means "local": no view gating and no
  // re-forwarding (everyone on the new view received the same redistribution
  // directly from the coordinator).
  void Ingest(const GroupDataPtr& data, bool observe_acks = true, MemberId from = 0);

  void TryDeliverPending();

  // Contiguous causally-delivered count per sender.
  const VectorClock& delivered() const { return vd_; }
  size_t delay_queue_length() const { return pending_.size(); }

  // Joiner: adopt the group's delivery cut as our floor (history we never
  // see, by design).
  void AdoptCut(const VectorClock& cut) { vd_.Merge(cut); }

  // Failed-sender cleanup at a view install: messages from a failed sender
  // *beyond* the flush cut are lost for good — no survivor holds a copy, and
  // nothing deliverable can depend on them (a dependent message would have
  // required its own sender to causally deliver the predecessor first, which
  // would have pulled it into the cut). Dropping them is the protocol
  // admitting non-durability.
  void DropFailedSenderBacklog(const ViewInstall& install);

  // View change: both delta-codec ends resynchronize on a keyframe (the
  // encoder's next frame carries the full clock; decoder references reset),
  // and the overlay path re-ingests frames stashed for the new view.
  void OnViewChange(const View& view) override;

 private:
  struct PendingMessage {
    GroupDataPtr data;
    sim::TimePoint arrived_at;
    MemberId from = 0;  // overlay arrival link; see Ingest
  };

  // Receiver half of the delta codec: the last reconstructed clock per
  // sender, advanced strictly along each sender's frame stream (the
  // transport's per-peer FIFO order).
  struct DeltaRef {
    VectorClock clock;
    uint64_t seq = 0;  // seq of the frame `clock` was decoded from
  };

  bool CausallyDeliverable(const GroupData& data) const;
  void CausalDeliver(const GroupDataPtr& data, sim::TimePoint arrived_at, MemberId from = 0);
  // Decodes a delta-stamped frame against the sender's reference and
  // cross-checks the reconstruction (counted in stats on mismatch).
  void DecodeDeltaFrame(const GroupData& data);
  // Overlay forward-on-delivery: push the just-delivered frame onto every
  // tree link except the one it arrived on, in causal delivery order — the
  // per-link FIFO discipline the constant-metadata path's correctness rests
  // on (DESIGN.md §11).
  void ForwardOnOverlay(const GroupDataPtr& data, MemberId from);

  uint64_t send_seq_ = 0;
  VectorClock vd_;  // contiguous causally-delivered count per sender
  std::deque<PendingMessage> pending_;
  // Buffering-during-churn (overlay): frames tagged with a view id ahead of
  // ours, held until that view installs here — the install's redistribution
  // closes any causal gap before these re-enter Ingest.
  std::deque<PendingMessage> pre_view_;
  // Fast duplicate check for pending_. Pool-backed: entries come and go once
  // per out-of-order arrival, and tree nodes are exactly the churn the
  // size-class pool exists for.
  std::set<MessageId, std::less<MessageId>, mem::PoolAllocator<MessageId>> pending_ids_;

  // Sender half of the delta codec (config.delta_timestamps): the clock
  // stamped on our previous frame; invalid forces the next frame to be a
  // keyframe (stream start, view change).
  VectorClock encoder_prev_;
  bool encoder_valid_ = false;
  // Sorted by member. Flat: one reference per live sender, looked up on
  // every delta-stamped frame — binary search over a contiguous vector.
  std::vector<std::pair<MemberId, DeltaRef>> delta_refs_;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_CAUSAL_LAYER_H_
