// Retention strategy for the constant-metadata overlay path (DESIGN.md §11).
//
// With dissemination running over the spanning overlay, stability tracking
// goes tree-shaped too: flat ack gossip (every member posting its
// delivered-vector to every other) is O(N) messages per member per round,
// which is exactly the scaling wall the overlay exists to remove. Instead
// each member aggregates a *subtree floor* — the pointwise minimum of its
// own delivered-vector and its overlay children's last up-reports — and
// sends only that to its overlay parent. The root's subtree is the whole
// group, so its floor is the true global stability floor; it floods the
// floor back down as an announcement every member adopts as its release
// floor. O(degree) messages per member per round, floor lag ~2·depth rounds.
//
// Safety under rewires: an up-report claims "every member of my subtree has
// delivered at least this", and subtrees are a pure function of the view's
// member list — so a report computed against one tree must not be read
// against another. The stability layer tags every floor frame with the view
// id and drops mismatches, and this strategy forgets child reports on every
// view change; aggregation restarts from fresh same-view evidence. Adopted
// floors stay valid across views (delivered counts never decrease, and a
// joiner enters having delivered the flush cut, which dominates any floor
// announced before its view), so the release floor itself is merged
// monotonically and never reset.

#ifndef REPRO_SRC_CATOCS_OVERLAY_BUFFER_H_
#define REPRO_SRC_CATOCS_OVERLAY_BUFFER_H_

#include <cstdint>
#include <vector>

#include "src/catocs/causal_buffer.h"
#include "src/catocs/message.h"
#include "src/catocs/stability.h"

namespace catocs {

class OverlayCausalStrategy : public CausalBufferStrategy {
 public:
  const char* name() const override { return "overlay"; }

  void SetMembers(const std::vector<MemberId>& members) override;
  void UpdateMemberVector(MemberId member, const VectorClock& vec) override;
  void UpdateMemberEntry(MemberId member, MemberId sender, uint64_t count) override;
  void AddToBuffer(const GroupDataPtr& msg) override;
  VectorClock StableVector() const override { return floor_; }
  uint64_t StableFloorFor(MemberId sender) const override { return floor_.Get(sender); }
  MemberId SlowestMemberFor(MemberId sender) const override;
  void Prune() override;
  std::vector<GroupDataPtr> UnstableMessages() const override;
  GroupDataPtr Find(const MessageId& id) const override;

  size_t buffered_count() const override { return buffer_.count(); }
  size_t buffered_bytes() const override { return buffered_bytes_; }
  size_t peak_buffered_count() const override { return peak_count_; }
  size_t peak_buffered_bytes() const override { return peak_bytes_; }

  // --- overlay-specific surface (driven by StabilityLayer) ------------------
  // Installs the aggregation set for the current tree: self plus the overlay
  // children. Reports from the previous tree are forgotten (see header).
  void SetReportSet(MemberId self, const std::vector<MemberId>& children);

  // Pointwise min of self's row and every child's report — empty (nothing
  // provable) until each report-set member has reported under this tree.
  VectorClock SubtreeFloor() const;

  // Merges an announced floor into the release floor and releases everything
  // it newly covers. Returns true if the floor advanced.
  bool AdoptFloor(const VectorClock& announced);

 private:
  void ReleaseUnderFloor(const char* cause);

  std::vector<MemberId> members_;     // current view, sorted
  std::vector<MemberId> report_set_;  // self + overlay children, sorted
  MemberId self_ = 0;
  // One row per report-set member: self's delivered-vector, children's
  // subtree floors. Rows for departed reporters are dropped on rewire.
  MemberMatrix reports_;
  size_t row_cache_ = 0;
  VectorClock floor_;     // adopted release floor; monotone across views
  RetentionRing buffer_;  // same per-sender-lane layout as the other strategies
  size_t buffered_bytes_ = 0;
  size_t peak_count_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_OVERLAY_BUFFER_H_
