// Per-group bounded-resource accounting (DESIGN.md §10).
//
// The paper's §2.3/§5 resource critique is that CATOCS buffering grows
// without bound whenever a receiver lags or a partition lingers. The
// ResourceBudget makes that growth a first-class, *bounded* quantity: every
// place the stack retains message memory — the causal-buffer retention ring,
// the sender batcher, the total-order layer's pending set, and the
// transport's unacked send queues — reports its occupancy into one per-group
// ledger, and a deterministic MemoryPressure signal (watermarks with
// hysteresis) drives the flow-control and overload policies in
// flow_control.h.
//
// All limits default to zero (unbounded): an unconfigured budget is never
// charged, so the default pipeline stays byte-identical. Charging uses
// absolute occupancy reports (Set) rather than paired charge/release deltas,
// so a component can never leak the ledger out of sync with its own books.

#ifndef REPRO_SRC_CATOCS_RESOURCE_BUDGET_H_
#define REPRO_SRC_CATOCS_RESOURCE_BUDGET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "src/catocs/pipeline_stats.h"

namespace catocs {

// Deterministic memory-pressure signal derived from budget utilization.
// Escalation is immediate; de-escalation only happens when utilization falls
// below the low watermark (hysteresis), at which point the *pressure epoch*
// ends. Within one epoch the level is therefore monotone non-decreasing —
// an invariant the chaos oracle checks.
enum class MemoryPressure : uint8_t {
  kNone = 0,      // below the high watermark (or budget unbounded)
  kHigh = 1,      // utilization crossed the high watermark
  kCritical = 2,  // utilization crossed the critical watermark
};

const char* ToString(MemoryPressure level);

struct BudgetConfig {
  // Hard caps on total retained bytes / messages across all charged
  // components. 0 disables that axis; both zero = unbounded (the default),
  // in which case nothing is ever charged.
  size_t max_bytes = 0;
  size_t max_messages = 0;
  // Watermarks as fractions of the tighter cap. Pressure escalates at high /
  // critical and resets (ending the epoch) only below low.
  double high_watermark = 0.70;
  double critical_watermark = 0.90;
  double low_watermark = 0.50;

  bool bounded() const { return max_bytes != 0 || max_messages != 0; }
};

class ResourceBudget {
 public:
  // The charging points. Each component reports its own occupancy
  // absolutely; the budget keeps per-component books and the totals.
  enum Component : uint8_t {
    kRetention = 0,   // causal-buffer strategy (retention ring)
    kBatcher,         // sender batcher's pending constituents
    kTotalPending,    // total-order layer's assignment/pending set
    kTransportQueue,  // transport unacked send queues
    kNumComponents,
  };

  void Configure(const BudgetConfig& config) { config_ = config; }
  // Transition counters and peaks surfaced through PipelineStats; optional.
  void BindStats(PipelineStats::BudgetStats* sink) { sink_ = sink; }

  bool bounded() const { return config_.bounded(); }
  const BudgetConfig& config() const { return config_; }

  // Absolute occupancy report from one component; recomputes totals,
  // peaks, and the pressure level. Callers gate on bounded() so the
  // unconfigured default path never reaches here.
  void Set(Component component, size_t bytes, size_t messages);

  size_t used_bytes() const { return total_bytes_; }
  size_t used_messages() const { return total_msgs_; }
  size_t component_bytes(Component c) const { return bytes_[c]; }
  size_t component_messages(Component c) const { return msgs_[c]; }
  size_t peak_bytes() const { return peak_bytes_; }
  size_t peak_messages() const { return peak_msgs_; }

  // Would an additional message of `bytes` exceed a configured cap?
  bool WouldExceed(size_t bytes, size_t messages) const {
    return (config_.max_bytes != 0 && total_bytes_ + bytes > config_.max_bytes) ||
           (config_.max_messages != 0 && total_msgs_ + messages > config_.max_messages);
  }

  // Utilization of the tighter axis, in [0, +inf); 0 when unbounded.
  double utilization() const;

  MemoryPressure pressure() const { return level_; }
  // Current pressure-epoch index: bumped each time pressure returns to
  // kNone. Samples of (epoch, level) are monotone per epoch by construction.
  uint64_t pressure_epoch() const { return epoch_; }

 private:
  void Reassess();

  BudgetConfig config_;
  PipelineStats::BudgetStats* sink_ = nullptr;
  size_t bytes_[kNumComponents] = {};
  size_t msgs_[kNumComponents] = {};
  size_t total_bytes_ = 0;
  size_t total_msgs_ = 0;
  size_t peak_bytes_ = 0;
  size_t peak_msgs_ = 0;
  MemoryPressure level_ = MemoryPressure::kNone;
  uint64_t epoch_ = 0;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_RESOURCE_BUDGET_H_
