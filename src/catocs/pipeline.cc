#include "src/catocs/pipeline.h"

#include "src/catocs/causal_layer.h"
#include "src/catocs/fifo_layer.h"
#include "src/catocs/membership_layer.h"
#include "src/catocs/stability_layer.h"
#include "src/catocs/total_order_layer.h"

namespace catocs {

PipelineBuilder& PipelineBuilder::AddDefaultStack() {
  Add(std::make_unique<CausalLayer>(core_));
  Add(std::make_unique<FifoLayer>(core_));
  Add(std::make_unique<StabilityLayer>(core_));
  Add(std::make_unique<MembershipLayer>(core_));
  Add(std::make_unique<TotalOrderLayer>(core_));
  return *this;
}

}  // namespace catocs
