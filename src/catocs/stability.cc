#include "src/catocs/stability.h"

#include <algorithm>

namespace catocs {

void StabilityTracker::SetMembers(const std::vector<MemberId>& members) {
  members_ = members;
  std::sort(members_.begin(), members_.end());
  // Forget progress reports from departed members so they no longer hold the
  // minimum down.
  for (auto it = delivered_by_.begin(); it != delivered_by_.end();) {
    if (!std::binary_search(members_.begin(), members_.end(), it->first)) {
      it = delivered_by_.erase(it);
    } else {
      ++it;
    }
  }
}

void StabilityTracker::UpdateMemberVector(MemberId member, const VectorClock& vec) {
  delivered_by_[member].Merge(vec);
}

void StabilityTracker::UpdateMemberEntry(MemberId member, MemberId sender, uint64_t count) {
  delivered_by_[member].RaiseTo(sender, count);
}

void StabilityTracker::AddToBuffer(const GroupDataPtr& msg) {
  auto [it, inserted] = buffer_.emplace(msg->id(), msg);
  (void)it;
  if (!inserted) {
    return;
  }
  buffered_bytes_ += msg->SizeBytes() + msg->HeaderBytes();
  peak_count_ = std::max(peak_count_, buffer_.size());
  peak_bytes_ = std::max(peak_bytes_, buffered_bytes_);
}

VectorClock StabilityTracker::StableVector() const {
  VectorClock stable;
  bool first = true;
  for (MemberId member : members_) {
    auto it = delivered_by_.find(member);
    if (it == delivered_by_.end()) {
      // No report from this member yet: nothing is stable.
      return {};
    }
    if (first) {
      stable = it->second;
      first = false;
      continue;
    }
    // Pointwise minimum: senders absent from the member's report have min 0
    // and are dropped.
    stable.MeetMin(it->second);
  }
  return stable;
}

void StabilityTracker::Prune() {
  if (buffer_.empty()) {
    return;
  }
  const VectorClock stable = StableVector();
  if (stable.empty()) {
    return;
  }
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (it->first.seq <= stable.Get(it->first.sender)) {
      buffered_bytes_ -= it->second->SizeBytes() + it->second->HeaderBytes();
      NotifyRelease(it->second);
      it = buffer_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<GroupDataPtr> StabilityTracker::UnstableMessages() const {
  std::vector<GroupDataPtr> out;
  out.reserve(buffer_.size());
  for (const auto& [id, msg] : buffer_) {
    out.push_back(msg);
  }
  return out;
}

GroupDataPtr StabilityTracker::Find(const MessageId& id) const {
  auto it = buffer_.find(id);
  return it == buffer_.end() ? nullptr : it->second;
}

}  // namespace catocs
