#include "src/catocs/stability.h"

#include <algorithm>

namespace catocs {

VectorClock& MatrixRow(MemberMatrix& matrix, MemberId member) {
  auto it = std::lower_bound(
      matrix.begin(), matrix.end(), member,
      [](const std::pair<MemberId, VectorClock>& row, MemberId m) { return row.first < m; });
  if (it == matrix.end() || it->first != member) {
    it = matrix.emplace(it, member, VectorClock{});
  }
  return it->second;
}

const VectorClock* MatrixRowIfPresent(const MemberMatrix& matrix, MemberId member) {
  auto it = std::lower_bound(
      matrix.begin(), matrix.end(), member,
      [](const std::pair<MemberId, VectorClock>& row, MemberId m) { return row.first < m; });
  return it != matrix.end() && it->first == member ? &it->second : nullptr;
}

VectorClock& MatrixRowCached(MemberMatrix& matrix, MemberId member, size_t& cache,
                             bool* created) {
  if (cache < matrix.size() && matrix[cache].first == member) {
    if (created != nullptr) {
      *created = false;
    }
    return matrix[cache].second;
  }
  auto it = std::lower_bound(
      matrix.begin(), matrix.end(), member,
      [](const std::pair<MemberId, VectorClock>& row, MemberId m) { return row.first < m; });
  const bool miss = it == matrix.end() || it->first != member;
  if (miss) {
    it = matrix.emplace(it, member, VectorClock{});
  }
  if (created != nullptr) {
    *created = miss;
  }
  cache = static_cast<size_t>(it - matrix.begin());
  return it->second;
}

void StabilityTracker::SetMembers(const std::vector<MemberId>& members) {
  members_ = members;
  std::sort(members_.begin(), members_.end());
  // Forget progress reports from departed members so they no longer hold the
  // minimum down.
  delivered_by_.erase(std::remove_if(delivered_by_.begin(), delivered_by_.end(),
                                     [this](const std::pair<MemberId, VectorClock>& row) {
                                       return !std::binary_search(members_.begin(),
                                                                  members_.end(), row.first);
                                     }),
                      delivered_by_.end());
  // Evicted senders can never be acked under their old id again; drop any
  // non-contiguous overflow strays they left behind (retention_ring.h). A
  // no-op on the protocol path, where retention is always contiguous.
  buffer_.PurgeOverflowNotIn(members_, [this](const GroupDataPtr& msg) {
    buffered_bytes_ -= msg->SizeBytes() + msg->HeaderBytes();
    NotifyRelease(msg, "evicted-sender");
  });
  ChargeBudget(buffered_bytes_, buffer_.count());
}

void StabilityTracker::UpdateMemberVector(MemberId member, const VectorClock& vec) {
  MatrixRowCached(delivered_by_, member, row_cache_).Merge(vec);
}

void StabilityTracker::UpdateMemberEntry(MemberId member, MemberId sender, uint64_t count) {
  MatrixRowCached(delivered_by_, member, row_cache_).RaiseTo(sender, count);
}

void StabilityTracker::AddToBuffer(const GroupDataPtr& msg) {
  if (!buffer_.Add(msg)) {
    return;
  }
  buffered_bytes_ += msg->SizeBytes() + msg->HeaderBytes();
  peak_count_ = std::max(peak_count_, buffer_.count());
  peak_bytes_ = std::max(peak_bytes_, buffered_bytes_);
  ChargeBudget(buffered_bytes_, buffer_.count());
}

VectorClock StabilityTracker::StableVector() const {
  VectorClock stable;
  bool first = true;
  for (MemberId member : members_) {
    const VectorClock* row = MatrixRowIfPresent(delivered_by_, member);
    if (row == nullptr) {
      // No report from this member yet: nothing is stable.
      return {};
    }
    if (first) {
      stable = *row;
      first = false;
      continue;
    }
    // Pointwise minimum: senders absent from the member's report have min 0
    // and are dropped.
    stable.MeetMin(*row);
  }
  return stable;
}

void StabilityTracker::Prune() {
  if (buffer_.empty()) {
    return;
  }
  const VectorClock stable = StableVector();
  if (stable.empty()) {
    return;
  }
  buffer_.ReleaseStable(stable, [this](const GroupDataPtr& msg) {
    buffered_bytes_ -= msg->SizeBytes() + msg->HeaderBytes();
    NotifyRelease(msg, "prune");
  });
  ChargeBudget(buffered_bytes_, buffer_.count());
}

uint64_t StabilityTracker::StableFloorFor(MemberId sender) const {
  uint64_t floor = UINT64_MAX;
  for (MemberId member : members_) {
    const VectorClock* row = MatrixRowIfPresent(delivered_by_, member);
    if (row == nullptr) {
      return 0;  // unreported member: nothing from `sender` is stable yet
    }
    floor = std::min(floor, row->Get(sender));
  }
  return floor == UINT64_MAX ? 0 : floor;
}

MemberId StabilityTracker::SlowestMemberFor(MemberId sender) const {
  MemberId slowest = 0;
  uint64_t lowest = UINT64_MAX;
  for (MemberId member : members_) {
    const VectorClock* row = MatrixRowIfPresent(delivered_by_, member);
    const uint64_t delivered = row == nullptr ? 0 : row->Get(sender);
    if (delivered < lowest) {
      lowest = delivered;
      slowest = member;
    }
  }
  return slowest;
}

std::vector<GroupDataPtr> StabilityTracker::UnstableMessages() const {
  return buffer_.CollectAll();
}

GroupDataPtr StabilityTracker::Find(const MessageId& id) const { return buffer_.Find(id); }

}  // namespace catocs
