// Vector clocks over group members, the timestamp carried by causal
// multicast (Birman–Schiper–Stephenson style). Entries are keyed by member
// id in an ordered map so iteration — and therefore every simulation that
// walks a clock — is deterministic.

#ifndef REPRO_SRC_CATOCS_VECTOR_CLOCK_H_
#define REPRO_SRC_CATOCS_VECTOR_CLOCK_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/net/latency.h"

namespace catocs {

using MemberId = net::NodeId;

// Result of comparing two vector clocks under the happens-before partial
// order.
enum class CausalOrder {
  kEqual,
  kBefore,      // lhs happens-before rhs
  kAfter,       // rhs happens-before lhs
  kConcurrent,  // neither precedes the other
};

const char* ToString(CausalOrder order);

class VectorClock {
 public:
  VectorClock() = default;

  uint64_t Get(MemberId member) const;
  void Set(MemberId member, uint64_t value);
  uint64_t Increment(MemberId member);

  // Pointwise maximum.
  void Merge(const VectorClock& other);

  CausalOrder Compare(const VectorClock& other) const;

  // True iff this >= other pointwise (this has "seen" everything in other).
  bool Dominates(const VectorClock& other) const;

  bool operator==(const VectorClock& other) const;

  size_t entry_count() const { return entries_.size(); }
  // Simulated wire size: one (member id, counter) pair per entry.
  size_t SizeBytes() const { return entries_.size() * kEntryBytes; }
  static constexpr size_t kEntryBytes = 12;

  const std::map<MemberId, uint64_t>& entries() const { return entries_; }

  std::string ToString() const;

 private:
  std::map<MemberId, uint64_t> entries_;
};

// Lamport scalar clock, used by the state-level alternatives (commit
// timestamps, prescriptive sequence numbers).
class LamportClock {
 public:
  // Returns the timestamp for a local event (send).
  uint64_t Tick() { return ++value_; }
  // Folds in a received timestamp and returns the updated local value.
  uint64_t Witness(uint64_t observed) {
    if (observed > value_) {
      value_ = observed;
    }
    return ++value_;
  }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_VECTOR_CLOCK_H_
