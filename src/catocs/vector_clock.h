// Vector clocks over group members, the timestamp carried by causal
// multicast (Birman–Schiper–Stephenson style). Entries live in a flat
// vector sorted by member id: iteration — and therefore every simulation
// that walks a clock — stays deterministic, and the hot-path operations
// (merge, compare, dominance, the causal-deliverability check) are linear
// two-pointer scans over contiguous memory instead of node-per-entry map
// walks. Zero-valued entries are never stored, so the representation is
// canonical and equality is a plain vector compare.

#ifndef REPRO_SRC_CATOCS_VECTOR_CLOCK_H_
#define REPRO_SRC_CATOCS_VECTOR_CLOCK_H_

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/net/latency.h"

namespace catocs {

using MemberId = net::NodeId;

// Result of comparing two vector clocks under the happens-before partial
// order.
enum class CausalOrder {
  kEqual,
  kBefore,      // lhs happens-before rhs
  kAfter,       // rhs happens-before lhs
  kConcurrent,  // neither precedes the other
};

const char* ToString(CausalOrder order);

// One (member, counter) coordinate. Decomposes via structured bindings so
// range-for loops read exactly like the old map iteration.
struct ClockEntry {
  MemberId member = 0;
  uint64_t value = 0;

  bool operator==(const ClockEntry&) const = default;
};

class VectorClock {
 public:
  using Entries = std::vector<ClockEntry>;

  VectorClock() = default;
  // Entries may arrive in any order; zero values are dropped (canonical form).
  VectorClock(std::initializer_list<ClockEntry> entries) {
    for (const ClockEntry& entry : entries) {
      Set(entry.member, entry.value);
    }
  }

  uint64_t Get(MemberId member) const;
  void Set(MemberId member, uint64_t value);
  uint64_t Increment(MemberId member);
  // Point update to max(current, value): the ack/stability hot path.
  void RaiseTo(MemberId member, uint64_t value);

  // Pointwise maximum.
  void Merge(const VectorClock& other);

  // Pointwise minimum, dropping members absent from either side (a missing
  // entry means 0). Used for the stability floor across member reports.
  void MeetMin(const VectorClock& other);

  CausalOrder Compare(const VectorClock& other) const;

  // True iff this >= other pointwise (this has "seen" everything in other).
  bool Dominates(const VectorClock& other) const;

  // Entries are canonical (sorted, no zeros), so representation equality is
  // semantic equality.
  bool operator==(const VectorClock& other) const { return entries_ == other.entries_; }

  bool empty() const { return entries_.empty(); }
  size_t entry_count() const { return entries_.size(); }
  // Simulated wire size: one (member id, counter) pair per entry.
  size_t SizeBytes() const { return entries_.size() * kEntryBytes; }
  static constexpr size_t kEntryBytes = 12;

  const Entries& entries() const { return entries_; }

  std::string ToString() const;

 private:
  // Representation invariant: strictly ascending member ids, no zero values.
  // Every mutator re-checks it in debug builds; all the linear scans rely on
  // it.
  void CheckCanonical() const {
#ifndef NDEBUG
    for (size_t i = 0; i + 1 < entries_.size(); ++i) {
      assert(entries_[i].member < entries_[i + 1].member && "clock entries out of order");
    }
    for (const ClockEntry& entry : entries_) {
      assert(entry.value != 0 && "zero entry stored in clock");
    }
#endif
  }

  Entries entries_;
};

// True iff a message stamped `vt` by `sender` satisfies the causal delivery
// condition at a process whose contiguously-delivered vector is `delivered`:
// vt[sender] == delivered[sender] + 1 and vt[m] <= delivered[m] for every
// other member m. Single two-pointer pass over both (sorted) clocks.
bool CausallyDeliverable(const VectorClock& vt, MemberId sender, const VectorClock& delivered);

// True iff delivered >= vt pointwise on every coordinate except `skip`.
// (The app-delivery gate: a message never waits on its own sender's entry.)
bool DominatesIgnoring(const VectorClock& delivered, const VectorClock& vt, MemberId skip);

// Lamport scalar clock, used by the state-level alternatives (commit
// timestamps, prescriptive sequence numbers).
class LamportClock {
 public:
  // Returns the timestamp for a local event (send).
  uint64_t Tick() { return ++value_; }
  // Folds in a received timestamp and returns the updated local value.
  uint64_t Witness(uint64_t observed) {
    if (observed > value_) {
      value_ = observed;
    }
    return ++value_;
  }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_VECTOR_CLOCK_H_
