// Hybrid/dependency-pruned retention buffer: the PAPERS.md-inspired
// alternative to the full-vector StabilityTracker (same stability condition,
// different release schedule — see causal_buffer.h).
//
// Two ideas, after Nédelec et al.'s scalable causal broadcast and Almeida's
// hybrid buffering:
//   1. Incremental floors: instead of a throttled walk of the whole member
//      matrix, keep the per-sender stability floor up to date as each ack
//      arrives and release buffered copies the instant their floor passes
//      them. The full tracker holds stable messages for up to a prune
//      interval; this one holds them for zero extra time.
//   2. Causal evidence: a delivered message's vector timestamp proves its
//      sender had causally delivered everything at or below it, so every
//      data message doubles as an ack vector even when explicit acks are
//      sparse (piggybacking off, slow gossip).
// Both only ever *advance* knowledge of what other members delivered, so the
// floor never overtakes true stability and no unstable message is dropped:
// the flush protocol's redistribution argument holds unchanged.

#ifndef REPRO_SRC_CATOCS_HYBRID_BUFFER_H_
#define REPRO_SRC_CATOCS_HYBRID_BUFFER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/catocs/causal_buffer.h"
#include "src/catocs/message.h"
#include "src/catocs/stability.h"

namespace catocs {

class HybridBuffer : public CausalBufferStrategy {
 public:
  const char* name() const override { return "hybrid"; }

  void SetMembers(const std::vector<MemberId>& members) override;
  void UpdateMemberVector(MemberId member, const VectorClock& vec) override;
  void UpdateMemberEntry(MemberId member, MemberId sender, uint64_t count) override;
  void ObserveDeliveredTimestamp(MemberId sender, const VectorClock& vt) override;
  void AddToBuffer(const GroupDataPtr& msg) override;
  VectorClock StableVector() const override;
  uint64_t StableFloorFor(MemberId sender) const override;
  MemberId SlowestMemberFor(MemberId sender) const override;
  void Prune() override;
  std::vector<GroupDataPtr> UnstableMessages() const override;
  GroupDataPtr Find(const MessageId& id) const override;

  size_t buffered_count() const override { return buffer_.count(); }
  size_t buffered_bytes() const override { return buffered_bytes_; }
  size_t peak_buffered_count() const override { return peak_count_; }
  size_t peak_buffered_bytes() const override { return peak_bytes_; }

 private:
  // The floor is only meaningful once every current member has reported at
  // least once (an unreported member pins everything unstable, exactly like
  // the full tracker's empty-row rule).
  bool AllReported() const { return reporting_ == members_.size(); }
  // Returns `member`'s progress row, creating it (and handling the
  // everyone-has-now-reported transition) on first contact.
  VectorClock& Row(MemberId member);
  // Incremental per-sender minimum over the member rows. Without it every
  // advanced coordinate pays an O(N) column rescan, and since every causal
  // delivery feeds ObserveDeliveredTimestamp the per-delivery cost becomes
  // O(N * entries) — at N=1024 that turns the E21 sweep from seconds into
  // hours. Rows only ever advance, so the cached minimum stays exact: a
  // raise from above the minimum cannot move it, and the column is rescanned
  // only when the last row holding the minimum leaves it — which is exactly
  // a floor advance, so rescans amortize against messages sent. Valid only
  // while AllReported(); rebuilt lazily per sender and invalidated wholesale
  // by RecomputeFloor() (membership changes, all-reported transitions).
  struct FloorMin {
    uint64_t value = 0;
    size_t rows_at_value = 0;
  };
  // A current member's row just advanced on `sender`'s coordinate from
  // `old_value`: update the cached minimum and, if it moved, raise the floor
  // and release newly stable buffered copies immediately.
  void NoteRowRaise(MemberId sender, uint64_t old_value);
  // Authoritative O(N log N) rescan of `sender`'s column over member rows.
  FloorMin ScanMin(MemberId sender) const;
  // Full floor recompute + release, for membership changes and the
  // all-reported transition.
  void RecomputeFloor();
  void ReleaseStable(MemberId sender, uint64_t floor);
  void ReleaseAllStable();

  std::vector<MemberId> members_;  // sorted
  // Rows may exist for non-members (late reports from evicted ids); the
  // floor ignores them.
  MemberMatrix delivered_by_;
  size_t row_cache_ = 0;  // last-touched row index, validated before use
  size_t reporting_ = 0;  // how many of members_ have a row
  VectorClock floor_;     // per-sender stability floor; valid iff AllReported()
  // Cached per-sender column minimum backing floor_ (see FloorMin above).
  std::map<MemberId, FloorMin> floor_min_;
  RetentionRing buffer_;  // per-sender lanes, same churn profile as the full tracker
  size_t buffered_bytes_ = 0;
  size_t peak_count_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_HYBRID_BUFFER_H_
