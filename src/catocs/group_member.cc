#include "src/catocs/group_member.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace catocs {

GroupMember::GroupMember(sim::Simulator* simulator, net::Transport* transport, GroupConfig config,
                         MemberId self, std::vector<MemberId> members)
    : simulator_(simulator), transport_(transport), config_(config), self_(self) {
  view_.id = 1;
  view_.members = std::move(members);
  std::sort(view_.members.begin(), view_.members.end());
  assert(std::find(view_.members.begin(), view_.members.end(), self_) != view_.members.end());
  stability_.SetMembers(view_.members);

  const GroupId g = config_.group_id;
  transport_->RegisterReceiver(DataPort(g), [this](MemberId src, uint32_t, const net::PayloadPtr& p) {
    OnData(src, p);
  });
  transport_->RegisterReceiver(OrderPort(g), [this](MemberId, uint32_t, const net::PayloadPtr& p) {
    OnOrder(p);
  });
  transport_->RegisterReceiver(AckPort(g), [this](MemberId src, uint32_t, const net::PayloadPtr& p) {
    OnAckVector(src, p);
  });
  transport_->RegisterReceiver(TokenPort(g), [this](MemberId, uint32_t, const net::PayloadPtr& p) {
    OnToken(p);
  });
  transport_->RegisterReceiver(MembershipPort(g),
                               [this](MemberId src, uint32_t, const net::PayloadPtr& p) {
                                 OnMembership(src, p);
                               });
}

GroupMember::~GroupMember() = default;

void GroupMember::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  if (config_.ack_gossip_interval > sim::Duration::Zero()) {
    gossip_timer_ = std::make_unique<sim::PeriodicTimer>(simulator_, config_.ack_gossip_interval,
                                                         [this] { GossipAcks(); });
    gossip_timer_->Start(config_.ack_gossip_interval);
  }
  if (config_.enable_membership) {
    heartbeat_timer_ = std::make_unique<sim::PeriodicTimer>(
        simulator_, config_.heartbeat_interval, [this] { SendHeartbeats(); });
    heartbeat_timer_->Start(sim::Duration::Zero());
    failure_check_timer_ = std::make_unique<sim::PeriodicTimer>(
        simulator_, config_.heartbeat_interval, [this] { CheckFailures(); });
    failure_check_timer_->Start(config_.failure_timeout);
  }
  if (config_.total_order_mode == TotalOrderMode::kToken && self_ == view_.members.front()) {
    // Seed the token at the lowest member.
    holding_token_ = true;
    simulator_->ScheduleAfter(config_.token_pass_delay, [this] {
      if (holding_token_) {
        PassToken(next_total_assign_);
      }
    });
  }
}

void GroupMember::Stop() {
  if (gossip_timer_) {
    gossip_timer_->Stop();
  }
  if (heartbeat_timer_) {
    heartbeat_timer_->Stop();
  }
  if (failure_check_timer_) {
    failure_check_timer_->Stop();
  }
  if (holding_token_) {
    holding_token_ = false;
  }
  started_ = false;
}

bool GroupMember::IsSequencer() const { return self_ == Sequencer(); }

MemberId GroupMember::Sequencer() const {
  assert(!view_.members.empty());
  return view_.members.front();
}

void GroupMember::BroadcastReliable(uint32_t port, const net::PayloadPtr& payload) {
  for (MemberId member : view_.members) {
    if (member != self_) {
      transport_->SendReliable(member, port, payload);
    }
  }
}

// --- data path ---------------------------------------------------------------

void GroupMember::Send(OrderingMode mode, net::PayloadPtr payload) {
  // A stopped (crashed) member silently drops sends: callers with periodic
  // senders keep firing across a crash, and a dead process originating
  // traffic would be nonsense. Counted so tests can observe the drop.
  if (!started_) {
    ++stats_.sends_while_stopped;
    return;
  }
  if (flushing_) {
    blocked_sends_.emplace_back(mode, std::move(payload));
    return;
  }
  ++stats_.sent;

  if (mode == OrderingMode::kUnordered) {
    // Plain multicast: unique id for tracing, empty vector time, no delay
    // queue, no stability buffering — and no guarantees.
    MessageId id{self_, 0};
    auto data = std::make_shared<GroupData>(config_.group_id, id, mode, VectorClock{},
                                            std::move(payload), simulator_->now());
    for (MemberId member : view_.members) {
      if (member != self_) {
        transport_->SendUnreliable(member, DataPort(config_.group_id), data);
      }
    }
    DeliverToApp(data, 0, sim::Duration::Zero());
    return;
  }

  const uint64_t seq = ++send_seq_;
  MessageId id{self_, seq};
  // The message's timestamp is the delivered-vector with our own entry
  // advanced to this send — one contiguous copy, no per-entry churn.
  VectorClock vt = vd_;
  vt.Set(self_, seq);
  auto data = std::make_shared<GroupData>(config_.group_id, id, mode, std::move(vt),
                                          std::move(payload), simulator_->now());
  if (config_.piggyback_acks) {
    data->set_acks(DeliveredVector());
  }
  if (config_.piggyback_causal) {
    // Footnote-4 variant: carry every unstable causal predecessor so the
    // receiver never has to wait — at the price of (much) larger messages.
    std::vector<GroupDataPtr> predecessors = stability_.UnstableMessages();
    stats_.piggyback_msgs_carried += predecessors.size();
    for (const auto& p : predecessors) {
      stats_.piggyback_bytes += p->SizeBytes() + p->HeaderBytes();
    }
    data->set_piggyback(std::move(predecessors));
  }

  stats_.ordering_header_bytes +=
      data->HeaderBytes() * (view_.members.size() - 1);

  // Self-delivery first (the send is a local event that advances the clock),
  // then fan out.
  IngestData(data);
  BroadcastReliable(DataPort(config_.group_id), data);
}

void GroupMember::OnData(MemberId /*src*/, const net::PayloadPtr& payload) {
  const auto* data = net::PayloadCast<GroupData>(payload);
  assert(data != nullptr);
  if (data->group() != config_.group_id) {
    return;
  }
  auto shared = std::static_pointer_cast<const GroupData>(payload);
  // Piggybacked predecessors are ingested first so this message's causal
  // condition can be met immediately.
  for (const auto& predecessor : shared->piggyback()) {
    IngestData(predecessor);
  }
  IngestData(shared);
}

void GroupMember::IngestData(const GroupDataPtr& data) {
  // Stability info rides on every data message.
  if (!data->acks().empty()) {
    stability_.UpdateMemberVector(data->id().sender, data->acks());
    MaybePrune();
  }

  if (data->mode() == OrderingMode::kUnordered) {
    DeliverToApp(data, 0, sim::Duration::Zero());
    return;
  }

  // Duplicate suppression: already causally delivered, or already pending.
  if (data->id().seq <= vd_.Get(data->id().sender)) {
    return;
  }
  if (!pending_ids_.insert(data->id()).second) {
    return;
  }
  pending_.push_back(PendingMessage{data, simulator_->now()});
  TryDeliverPending();
}

bool GroupMember::CausallyDeliverable(const GroupData& data) const {
  return catocs::CausallyDeliverable(data.vt(), data.id().sender, vd_);
}

void GroupMember::TryDeliverPending() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (CausallyDeliverable(*it->data)) {
        PendingMessage pending = std::move(*it);
        pending_.erase(it);
        pending_ids_.erase(pending.data->id());
        CausalDeliver(pending);
        progress = true;
        break;  // iterators invalidated; rescan
      }
    }
  }
}

void GroupMember::CausalDeliver(const PendingMessage& pending) {
  const GroupDataPtr& data = pending.data;
  const MemberId sender = data->id().sender;
  assert(vd_.Get(sender) + 1 == data->id().seq);
  vd_.Set(sender, data->id().seq);
  ++stats_.causal_delivered;

  const sim::Duration causal_delay = simulator_->now() - pending.arrived_at;
  if (causal_delay > sim::Duration::Zero()) {
    ++stats_.delayed_deliveries;
    stats_.total_causal_delay += causal_delay;
  }

  // Retain for atomic delivery until stable (without any piggybacked
  // predecessors, which are buffered in their own right).
  stability_.AddToBuffer(StripPiggyback(data));
  NoteLocalProgress(sender, data->id().seq);

  if (data->mode() == OrderingMode::kTotal) {
    if (config_.total_order_mode == TotalOrderMode::kSequencer) {
      if (IsSequencer() && !seq_by_id_.count(data->id())) {
        SequencerAssign(data->id());
      }
    } else if (!seq_by_id_.count(data->id())) {
      unassigned_total_.push_back(data->id());
    }
  }
  app_pending_.push_back(AppPending{data, causal_delay});
  TryDeliverApp();
}

bool GroupMember::AppDeliverable(const GroupData& data) const {
  // App-level causal clearance: everything that happens-before this message
  // must already be visible to the application (or have been skipped at a
  // view change). Per-sender order is enforced by the FIFO scan in
  // TryDeliverApp; the gate never waits on the message's own sender entry.
  if (!DominatesIgnoring(ad_, data.vt(), data.id().sender)) {
    return false;
  }
  if (data.mode() == OrderingMode::kTotal) {
    auto it = seq_by_id_.find(data.id());
    return it != seq_by_id_.end() && it->second == next_total_deliver_;
  }
  return true;
}

void GroupMember::TryDeliverApp() {
  bool progress = true;
  while (progress) {
    progress = false;
    std::set<MemberId> blocked_senders;
    for (auto it = app_pending_.begin(); it != app_pending_.end(); ++it) {
      const MemberId sender = it->data->id().sender;
      if (blocked_senders.count(sender)) {
        continue;  // an earlier message from this sender is still gated
      }
      if (!AppDeliverable(*it->data)) {
        blocked_senders.insert(sender);
        continue;
      }
      AppPending entry = std::move(*it);
      app_pending_.erase(it);
      ad_.RaiseTo(sender, entry.data->id().seq);
      uint64_t total_seq = 0;
      if (entry.data->mode() == OrderingMode::kTotal) {
        total_seq = next_total_deliver_++;
        order_by_seq_.erase(total_seq);
      }
      DeliverToApp(entry.data, total_seq, entry.causal_delay);
      progress = true;
      break;  // iterators invalidated; rescan
    }
  }
}

void GroupMember::DeliverToApp(const GroupDataPtr& data, uint64_t total_seq,
                               sim::Duration causal_delay) {
  ++stats_.app_delivered;
  if (!delivery_handler_) {
    return;
  }
  // Shares the one immutable GroupData; nothing per-recipient is copied.
  Delivery delivery;
  delivery.data = data;
  delivery.total_seq = total_seq;
  delivery.delivered_at = simulator_->now();
  delivery.causal_delay = causal_delay;
  delivery_handler_(delivery);
}

void GroupMember::NoteLocalProgress(MemberId sender, uint64_t count) {
  stability_.UpdateMemberEntry(self_, sender, count);
  MaybePrune();
}

void GroupMember::MaybePrune() {
  if (simulator_->now() - last_prune_ >= config_.prune_interval) {
    last_prune_ = simulator_->now();
    stability_.Prune();
  }
}

// --- total order -------------------------------------------------------------

void GroupMember::SequencerAssign(const MessageId& id) {
  const uint64_t seq = next_total_assign_++;
  std::vector<std::pair<MessageId, uint64_t>> batch{{id, seq}};
  auto order = std::make_shared<OrderAssignment>(config_.group_id, batch);
  ++stats_.order_msgs_sent;
  BroadcastReliable(OrderPort(config_.group_id), order);
  ApplyAssignments(batch);
}

std::vector<std::pair<MessageId, uint64_t>> GroupMember::AssignPendingUnorderedTotals() {
  // Used at view changes and token turns: sequence every causally delivered
  // but still unordered kTotal message, in local (causal) delivery order.
  std::vector<std::pair<MessageId, uint64_t>> batch;
  for (const auto& entry : app_pending_) {
    if (entry.data->mode() == OrderingMode::kTotal && !seq_by_id_.count(entry.data->id())) {
      batch.emplace_back(entry.data->id(), next_total_assign_++);
    }
  }
  return batch;
}

void GroupMember::OnOrder(const net::PayloadPtr& payload) {
  const auto* order = net::PayloadCast<OrderAssignment>(payload);
  assert(order != nullptr);
  if (order->group() != config_.group_id) {
    return;
  }
  ApplyAssignments(order->assignments());
}

void GroupMember::ApplyAssignments(const std::vector<std::pair<MessageId, uint64_t>>& assignments) {
  for (const auto& [id, seq] : assignments) {
    if (seq_by_id_.emplace(id, seq).second) {
      order_by_seq_[seq] = id;
      if (config_.total_order_mode == TotalOrderMode::kToken) {
        recent_assignments_[seq] = id;
        while (recent_assignments_.size() > kTokenAssignmentWindow) {
          recent_assignments_.erase(recent_assignments_.begin());
        }
      }
    }
  }
  TryDeliverApp();
}

void GroupMember::OnToken(const net::PayloadPtr& payload) {
  const auto* token = net::PayloadCast<OrderToken>(payload);
  assert(token != nullptr);
  if (token->group() != config_.group_id || config_.total_order_mode != TotalOrderMode::kToken) {
    return;
  }
  if (!started_) {
    return;  // stopped member drops the token; membership would regenerate it
  }
  holding_token_ = true;
  next_total_assign_ = std::max(next_total_assign_, token->next_total_seq());
  // The token's assignment log is authoritative for everything sequenced so
  // far, including assignments whose broadcasts are still in flight to us.
  ApplyAssignments(std::vector<std::pair<MessageId, uint64_t>>(token->assignments().begin(),
                                                               token->assignments().end()));

  // Sequence every message we have causally delivered but that is not yet
  // ordered, in our causal delivery order. Because causal delivery of m2
  // implies prior causal delivery of any m1 that happens-before it, this
  // keeps the total order consistent with causality.
  std::vector<std::pair<MessageId, uint64_t>> batch;
  while (!unassigned_total_.empty()) {
    const MessageId id = unassigned_total_.front();
    unassigned_total_.pop_front();
    if (!seq_by_id_.count(id)) {
      batch.emplace_back(id, next_total_assign_++);
    }
  }
  if (!batch.empty()) {
    auto order = std::make_shared<OrderAssignment>(config_.group_id, batch);
    ++stats_.order_msgs_sent;
    BroadcastReliable(OrderPort(config_.group_id), order);
    ApplyAssignments(batch);
  }
  simulator_->ScheduleAfter(config_.token_pass_delay, [this] {
    if (holding_token_ && started_) {
      PassToken(next_total_assign_);
    }
  });
}

void GroupMember::PassToken(uint64_t next_total_seq) {
  holding_token_ = false;
  ++stats_.token_passes;
  // Next member in id order, wrapping.
  auto it = std::upper_bound(view_.members.begin(), view_.members.end(), self_);
  const MemberId next = it == view_.members.end() ? view_.members.front() : *it;
  if (next == self_) {
    holding_token_ = true;  // sole member keeps the token
    return;
  }
  std::map<MessageId, uint64_t> carried;
  for (const auto& [seq, id] : recent_assignments_) {
    carried.emplace(id, seq);
  }
  transport_->SendReliable(next, TokenPort(config_.group_id),
                           std::make_shared<OrderToken>(config_.group_id, next_total_seq,
                                                        std::move(carried)));
}

// --- stability ---------------------------------------------------------------

void GroupMember::OnAckVector(MemberId src, const net::PayloadPtr& payload) {
  const auto* acks = net::PayloadCast<AckVector>(payload);
  assert(acks != nullptr);
  if (acks->group() != config_.group_id) {
    return;
  }
  stability_.UpdateMemberVector(src, acks->delivered());
  MaybePrune();
}

void GroupMember::GossipAcks() {
  if (flushing_) {
    return;
  }
  stability_.Prune();
  auto acks = std::make_shared<AckVector>(config_.group_id, DeliveredVector());
  for (MemberId member : view_.members) {
    if (member != self_) {
      transport_->SendUnreliable(member, AckPort(config_.group_id), acks);
      ++stats_.ack_msgs_sent;
    }
  }
}

}  // namespace catocs
