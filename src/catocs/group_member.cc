#include "src/catocs/group_member.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/catocs/causal_layer.h"
#include "src/catocs/fifo_layer.h"
#include "src/catocs/flow_control.h"
#include "src/catocs/membership_layer.h"
#include "src/catocs/sender_batch.h"
#include "src/catocs/stability_layer.h"
#include "src/catocs/total_order_layer.h"
#include "src/mem/pool.h"

namespace catocs {

GroupMember::GroupMember(sim::Simulator* simulator, net::Transport* transport, GroupConfig config,
                         MemberId self, std::vector<MemberId> members) {
  core_.simulator = simulator;
  core_.transport = transport;
  core_.config = config;
  core_.self = self;
  core_.member = this;
  core_.view.id = 1;
  core_.view.members = std::move(members);
  std::sort(core_.view.members.begin(), core_.view.members.end());
  assert(std::find(core_.view.members.begin(), core_.view.members.end(), core_.self) !=
         core_.view.members.end());

  core_.RebuildOverlay();
  pipeline_ = PipelineBuilder(&core_).AddDefaultStack().Build();
  // No sender batching in overlay mode: coalescing happens per-link on the
  // tree (every forward is a single frame to O(1) neighbors already), and the
  // batcher's direct-broadcast flush would bypass the overlay entirely.
  if (core_.config.batching > 1 && !core_.overlay_mode()) {
    batcher_ = std::make_unique<SenderBatcher>(&core_);
  }
  if (core_.config.budget.bounded()) {
    core_.budget.Configure(core_.config.budget);
    core_.budget.BindStats(&core_.pipeline_stats.budget);
  }
  if (core_.config.send_window > 0 || core_.config.budget.bounded()) {
    flow_ = std::make_unique<FlowController>(&core_);
  }

  // One dispatcher per group port; the pipeline routes to whichever layer
  // claims the port.
  const GroupId g = core_.config.group_id;
  auto dispatch = [this](MemberId src, uint32_t port, const net::PayloadPtr& p) {
    pipeline_.Dispatch(src, port, p);
  };
  transport->RegisterReceiver(GroupPorts::Data(g), dispatch);
  transport->RegisterReceiver(GroupPorts::Order(g), dispatch);
  transport->RegisterReceiver(GroupPorts::Ack(g), dispatch);
  transport->RegisterReceiver(GroupPorts::Token(g), dispatch);
  transport->RegisterReceiver(GroupPorts::Membership(g), dispatch);
}

GroupMember::~GroupMember() = default;

void GroupMember::SetDeliveryHandler(DeliveryHandler handler) {
  assert(!core_.started && "handlers must be installed before Start()");
  core_.delivery_handler = std::move(handler);
}

void GroupMember::SetViewHandler(ViewHandler handler) {
  assert(!core_.started && "handlers must be installed before Start()");
  core_.view_handler = std::move(handler);
}

void GroupMember::SetStateProvider(StateProvider fn) {
  assert(!core_.started && "handlers must be installed before Start()");
  core_.state_provider = std::move(fn);
}

void GroupMember::SetStateApplier(StateApplier fn) {
  assert(!core_.started && "handlers must be installed before Start()");
  core_.state_applier = std::move(fn);
}

void GroupMember::ReportFailure(MemberId suspect, bool deliberate) {
  core_.membership->ReportFailure(suspect, deliberate);
}

void GroupMember::Start() {
  if (core_.started) {
    return;
  }
  core_.started = true;
  pipeline_.OnStart();
}

void GroupMember::Stop() {
  if (batcher_ != nullptr) {
    // A stopping (crashing) member abandons its un-broadcast batch, exactly
    // as it abandons in-flight unbatched frames.
    batcher_->DropPending();
  }
  if (flow_ != nullptr) {
    flow_->OnStop();
  }
  pipeline_.OnStop();
  core_.started = false;
}

void GroupMember::JoinGroup(MemberId contact) { core_.membership->JoinGroup(contact); }

void GroupMember::DeclareDependency(const MessageId& dep) {
  // Without a recorder the declaration has no observer; skip the append so
  // uninstrumented members never grow the pending list. Unordered ids
  // ({*, 0}) are not individually identifiable — nothing to declare against.
  if (core_.provenance() == nullptr || dep.sender == 0 || dep.seq == 0) {
    return;
  }
  core_.pending_deps.push_back(dep);
}

SendResult GroupMember::TrySend(OrderingMode mode, net::PayloadPtr payload) {
  return SendInternal(mode, std::move(payload), /*admission_exempt=*/false);
}

SendResult GroupMember::ReissueBlockedSend(OrderingMode mode, net::PayloadPtr payload) {
  return SendInternal(mode, std::move(payload), /*admission_exempt=*/true);
}

SendResult GroupMember::SendInternal(OrderingMode mode, net::PayloadPtr payload,
                                     bool admission_exempt) {
  // A stopped (crashed) member silently drops sends: callers with periodic
  // senders keep firing across a crash, and a dead process originating
  // traffic would be nonsense. Counted so tests can observe the drop.
  if (!core_.started) {
    ++core_.stats.sends_while_stopped;
    core_.pending_deps.clear();  // the send they were declared for is gone
    return SendResult{SendStatus::kStopped, MessageId{0, 0}};
  }
  // Flow admission runs before the flush-blocked queue: a sender out of
  // credits must not grow the blocked queue during a view change — that
  // queue is the one place overload could still buffer without bound.
  // Unordered sends bypass admission (they are never retained or windowed);
  // blocked-send re-issues were admitted when first queued.
  if (flow_ != nullptr && !admission_exempt && mode != OrderingMode::kUnordered) {
    const SendStatus admission = flow_->Admit();
    if (admission != SendStatus::kSent) {
      return SendResult{admission, MessageId{0, 0}};
    }
  }
  if (core_.membership->flushing()) {
    core_.membership->QueueBlockedSend(mode, std::move(payload));
    return SendResult{SendStatus::kQueuedBehindFlush, MessageId{0, 0}};
  }
  ++core_.stats.sent;

  if (mode == OrderingMode::kUnordered) {
    // Plain multicast: unique id for tracing, empty vector time, no delay
    // queue, no stability buffering — and no guarantees.
    MessageId id{core_.self, 0};
    auto data = mem::MakePooled<GroupData>(core_.config.group_id, id, mode, VectorClock{},
                                           std::move(payload), core_.simulator->now());
    for (MemberId member : core_.view.members) {
      if (member != core_.self) {
        core_.transport->SendUnreliable(member, GroupPorts::Data(core_.config.group_id), data);
      }
    }
    core_.fifo->DeliverDirect(data);
    return SendResult{SendStatus::kSent, id};
  }

  const uint64_t seq = core_.causal->AllocateSendSeq();
  MessageId id{core_.self, seq};
  if (!core_.pending_deps.empty()) {
    // The declared dependencies now have a concrete dependent: feed the
    // semantic graph (the recorder was non-null when they were declared, but
    // re-check — a config could have detached it in between).
    if (obs::ProvenanceRecorder* recorder = core_.provenance()) {
      for (const MessageId& dep : core_.pending_deps) {
        recorder->DeclareSemanticDep(SpanKey(id), SpanKey(dep));
      }
    }
    core_.pending_deps.clear();
  }
  auto data = mem::MakePooled<GroupData>(core_.config.group_id, id, mode, VectorClock{},
                                         std::move(payload), core_.simulator->now());
  core_.RecordSpan(id, sim::SpanEvent::kSend, "member", ToString(mode));
  // Each layer stamps its own header section (vector timestamp, then
  // acks/piggyback) before the message is shared with anyone.
  pipeline_.OnSend(*data);

  // Self-delivery first (the send is a local event that advances the clock),
  // then fan out — immediately, or through the batcher, which also owns the
  // header-byte charge for the coalesced frame.
  GroupDataPtr shared = std::move(data);
  if (core_.overlay_mode()) {
    // Constant-metadata path: no direct multicast. Self-delivery with
    // from=self runs forward-on-delivery, which pushes the frame onto every
    // overlay link in causal delivery order (DESIGN.md §11) — the per-link
    // transmission and header charges happen there, one hop at a time.
    assert(mode != OrderingMode::kTotal && "overlay path orders causally only");
    core_.causal->Ingest(shared, /*observe_acks=*/true, core_.self);
    core_.SyncTransportBudget();
    return SendResult{SendStatus::kSent, id};
  }
  core_.causal->Ingest(shared);
  if (batcher_ != nullptr) {
    batcher_->Append(shared);
    core_.SyncTransportBudget();
    return SendResult{SendStatus::kSent, id};
  }
  core_.stats.ordering_header_bytes += shared->HeaderBytes() * (core_.view.members.size() - 1);
  core_.stats.data_transmissions += core_.view.members.size() - 1;
  core_.BroadcastReliable(GroupPorts::Data(core_.config.group_id), shared);
  core_.SyncTransportBudget();
  return SendResult{SendStatus::kSent, id};
}

void GroupMember::SetSendReadyHandler(std::function<void()> fn) {
  if (flow_ != nullptr) {
    flow_->SetSendReadyHandler(std::move(fn));
  }
}

uint64_t GroupMember::send_credits() const {
  return flow_ != nullptr ? flow_->credits() : UINT64_MAX;
}

bool GroupMember::backpressured() const { return flow_ != nullptr && flow_->backpressured(); }

bool GroupMember::flush_in_progress() const { return core_.membership->flushing(); }
size_t GroupMember::delay_queue_length() const { return core_.causal->delay_queue_length(); }
size_t GroupMember::buffered_messages() const { return core_.stability->buffered_messages(); }
size_t GroupMember::buffered_bytes() const { return core_.stability->buffered_bytes(); }
size_t GroupMember::peak_buffered_messages() const {
  return core_.stability->peak_buffered_messages();
}
size_t GroupMember::peak_buffered_bytes() const { return core_.stability->peak_buffered_bytes(); }
const CausalBufferStrategy& GroupMember::stability() const { return core_.stability->strategy(); }

}  // namespace catocs
