// Per-layer hold-time attribution for the ordering pipeline.
//
// The paper's §5 claims are claims about *where messages wait*: the causal
// delay queue (potential/false causality), the app-side FIFO/total-order
// gate, the retention buffer (stability lag), and the membership layer's
// flush blocking. PipelineStats turns each wait point into an attributed
// breakdown — how many messages entered it, how many waited at all, and the
// total/max time spent — keyed by a HoldReason that names both the owning
// layer and why the message could not proceed. One instance hangs off each
// GroupCore; layers feed it only when GroupConfig::observability is set, so
// the default fast path records nothing.

#ifndef REPRO_SRC_CATOCS_PIPELINE_STATS_H_
#define REPRO_SRC_CATOCS_PIPELINE_STATS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/catocs/message.h"
#include "src/sim/metrics.h"
#include "src/sim/time.h"

namespace catocs {

// Why a message was held at a pipeline wait point. Each reason belongs to
// exactly one layer (LayerOf), so a per-reason breakdown is also a per-layer
// one.
enum class HoldReason : uint8_t {
  kCausalGap = 0,  // causal layer: a happens-before predecessor is missing
  kFifoGap,        // fifo gate: earlier deliveries not yet visible to the app
  kTotalTurn,      // fifo gate: kTotal message waiting for its sequence turn
  kOrderAssign,    // total-order layer: awaiting sequencer/token assignment
  kStability,      // retention buffer: delivered but not yet known stable
  kFlushBlocked,   // membership: send queued while a flush blocks the group
};

inline constexpr size_t kNumHoldReasons = 6;

const char* ToString(HoldReason reason);
// The pipeline layer a reason is attributed to ("causal", "fifo", ...).
const char* LayerOf(HoldReason reason);

struct PipelineStats {
  struct HoldStat {
    uint64_t entered = 0;   // messages that reached this wait point
    uint64_t released = 0;  // ... that have left it again
    uint64_t held = 0;      // ... that left after a strictly positive wait
    sim::Duration total_hold = sim::Duration::Zero();
    sim::Duration max_hold = sim::Duration::Zero();

    double mean_hold_ms() const {
      return released ? static_cast<double>(total_hold.nanos()) / 1e6 /
                            static_cast<double>(released)
                      : 0.0;
    }
  };

  // Bounded-resource counters (DESIGN.md §10), fed by the group's
  // ResourceBudget when one is configured; all-zero (and omitted from
  // export/summary) otherwise.
  struct BudgetStats {
    uint64_t pressure_high = 0;      // transitions into high pressure
    uint64_t pressure_critical = 0;  // transitions into critical pressure
    uint64_t pressure_epochs = 0;    // completed pressure epochs
    uint64_t peak_bytes = 0;         // peak charged bytes across components
    uint64_t peak_messages = 0;      // peak charged messages

    bool any() const {
      return pressure_high != 0 || pressure_critical != 0 || pressure_epochs != 0 ||
             peak_bytes != 0 || peak_messages != 0;
    }
  };

  std::array<HoldStat, kNumHoldReasons> by_reason;
  BudgetStats budget;

  HoldStat& reason(HoldReason r) { return by_reason[static_cast<size_t>(r)]; }
  const HoldStat& reason(HoldReason r) const { return by_reason[static_cast<size_t>(r)]; }

  void RecordEnter(HoldReason r) { ++reason(r).entered; }
  void RecordRelease(HoldReason r, sim::Duration hold);

  // Accumulate another member's stats (fabric/rig aggregation).
  void Merge(const PipelineStats& other);

  uint64_t TotalEntered() const;
  uint64_t TotalReleased() const;
  sim::Duration TotalHold() const;

  // Export as labeled metrics (counter pipeline_entered{...}, histogram-free:
  // holds are already aggregated, so totals land in counters and the
  // mean/max in gauges scaled to microseconds).
  void ExportTo(sim::MetricsRegistry& registry, const std::string& node) const;

  // One line per reason with a nonzero entry count.
  std::string Summary() const;
};

// Span key for a message: the sender in the high bits over the per-sender
// sequence. Sequence numbers beyond 2^40 would alias, far past any run here.
inline uint64_t SpanKey(const MessageId& id) {
  return (static_cast<uint64_t>(id.sender) << 40) ^ id.seq;
}

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_PIPELINE_STATS_H_
