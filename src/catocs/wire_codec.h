// Delta encoding of vector timestamps for the wire (§3.4 overhead: the
// full-clock header is the dominant per-message cost at large N, yet
// successive frames from one sender differ in only the few entries that
// sender delivered since its last frame).
//
// Encoder (sender side, causal_layer.cc): each frame carries only the
// entries that changed since the sender's previous frame; the first frame —
// and the first frame after a view change — is a keyframe carrying the full
// clock. Decoder (receiver side): a per-sender reference clock, advanced
// frame by frame. The transport's per-peer reliable FIFO channel is what
// makes cross-frame deltas safe: frames from one sender are decoded in
// exactly the order they were encoded, and a sender that crashes and
// rejoins does so under a fresh member id whose first frame is a keyframe.
//
// Clocks only grow, so a delta never removes an entry; decoding is a sorted
// merge of the reference with the changed entries.

#ifndef REPRO_SRC_CATOCS_WIRE_CODEC_H_
#define REPRO_SRC_CATOCS_WIRE_CODEC_H_

#include <cstddef>

#include "src/catocs/message.h"
#include "src/catocs/vector_clock.h"

namespace catocs {

// The third wire form, next to the full clock and the keyframe/delta pair:
// the overlay path's constant-size causal header (DESIGN.md §11). A frame
// disseminated over the spanning overlay carries no clock at all — causal
// order falls out of FIFO links plus forward-in-delivery-order — only the
// sender's view id (8) and a flag byte (1), so the causal header is O(1) in
// both group size and delivery history. GroupData::HeaderSections charges
// this instead of the clock when the overlay header is set; the clock the
// simulator still stamps internally is bookkeeping for the oracles and is
// never transmitted.
constexpr size_t kOverlayHeaderBytes = 9;

// Number of entries in `cur` that differ from `prev` (null prev = all of
// them). Two-pointer scan over the sorted entry vectors.
size_t DeltaEntryCount(const VectorClock* prev, const VectorClock& cur);

// Encodes `cur` as a delta against `prev`; null prev produces a keyframe.
WireVt EncodeVtDelta(const VectorClock* prev, const VectorClock& cur);

// Reconstructs the full clock from `wire` against the receiver's reference
// for this sender. A keyframe ignores (and replaces) the reference.
VectorClock DecodeVtDelta(const VectorClock& reference, const WireVt& wire);

// In-place form for the per-frame decode path: advances `reference` by the
// delta's changed entries without materializing a copy. Non-keyframes only
// (a keyframe replaces the reference wholesale — use DecodeVtDelta).
void ApplyVtDelta(VectorClock& reference, const WireVt& wire);

// O(delta) deliverability for a non-keyframe delta frame, exact (agrees with
// the full CausallyDeliverable scan in both directions). Soundness of
// skipping unchanged entries: requiring delivered[sender]+1 == seq means
// frame (sender, seq-1) was causally delivered *here*, so at that moment
// every entry of its clock was <= delivered; delivered only grows, and the
// unchanged entries of frame seq are exactly that clock's entries — only the
// changed ones can exceed today's delivered vector.
bool CausallyDeliverableDelta(const WireVt& wire, MemberId sender, uint64_t seq,
                              const VectorClock& delivered);

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_WIRE_CODEC_H_
