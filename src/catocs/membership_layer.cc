#include "src/catocs/membership_layer.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "src/catocs/causal_layer.h"
#include "src/catocs/fifo_layer.h"
#include "src/catocs/group_member.h"
#include "src/catocs/sender_batch.h"
#include "src/catocs/stability_layer.h"
#include "src/catocs/total_order_layer.h"

namespace catocs {

namespace {

// Entering a flush must first push out any coalescing batch: its
// constituents were already self-delivered (they advanced our clock and sit
// in our flush cut), so splitting or abandoning them here would desync the
// group. Flushing the batch keeps "batch never spans a view change" an
// invariant rather than a hope.
void FlushPendingBatch(GroupCore* core) {
  if (core->batcher != nullptr) {
    core->batcher->FlushNow();
  }
}

}  // namespace

void MembershipLayer::OnStart() {
  if (core_->config.enable_membership) {
    heartbeat_timer_ = std::make_unique<sim::PeriodicTimer>(
        core_->simulator, core_->config.heartbeat_interval, [this] { SendHeartbeats(); });
    heartbeat_timer_->Start(sim::Duration::Zero());
    failure_check_timer_ = std::make_unique<sim::PeriodicTimer>(
        core_->simulator, core_->config.heartbeat_interval, [this] { CheckFailures(); });
    failure_check_timer_->Start(core_->config.failure_timeout);
  }
}

void MembershipLayer::OnStop() {
  if (heartbeat_timer_) {
    heartbeat_timer_->Stop();
  }
  if (failure_check_timer_) {
    failure_check_timer_->Stop();
  }
}

bool MembershipLayer::OnReceive(MemberId src, uint32_t port, const net::PayloadPtr& payload) {
  if (port != GroupPorts::Membership(core_->config.group_id)) {
    return false;
  }
  if (const auto* hb = net::PayloadCast<Heartbeat>(payload)) {
    if (hb->group() == core_->config.group_id) {
      last_heard_[src] = core_->simulator->now();
    }
    return true;
  }
  if (const auto* join = net::PayloadCast<JoinRequest>(payload)) {
    if (join->group() == core_->config.group_id) {
      OnJoinRequest(*join);
    }
    return true;
  }
  if (const auto* suspect = net::PayloadCast<SuspectNotice>(payload)) {
    if (suspect->group() == core_->config.group_id) {
      HandleSuspicion(suspect->suspect());
    }
    return true;
  }
  if (const auto* req = net::PayloadCast<FlushRequest>(payload)) {
    if (req->group() == core_->config.group_id) {
      OnFlushRequest(src, *req);
    }
    return true;
  }
  if (const auto* state = net::PayloadCast<FlushState>(payload)) {
    if (state->group() == core_->config.group_id) {
      OnFlushState(src, *state);
    }
    return true;
  }
  if (const auto* install = net::PayloadCast<ViewInstall>(payload)) {
    if (install->group() == core_->config.group_id) {
      OnViewInstall(*install);
    }
    return true;
  }
  return true;
}

void MembershipLayer::JoinGroup(MemberId contact) {
  FlushPendingBatch(core_);
  // Block application sends until the join view installs.
  joining_ = true;
  flushing_ = true;
  flush_started_ = core_->simulator->now();
  core_->transport->SendReliable(
      contact, GroupPorts::Membership(core_->config.group_id),
      std::make_shared<JoinRequest>(core_->config.group_id, core_->self));
}

void MembershipLayer::ReportFailure(MemberId suspect, bool deliberate) {
  if (!core_->config.enable_membership || !core_->started || joining_) {
    return;
  }
  HandleSuspicion(suspect, deliberate);
}

void MembershipLayer::QueueBlockedSend(OrderingMode mode, net::PayloadPtr payload) {
  if (core_->observing()) {
    core_->pipeline_stats.RecordEnter(HoldReason::kFlushBlocked);
  }
  // Carry any declared-but-unattached dependencies with the queued send so
  // the flush round trip neither loses them nor leaks them onto whatever the
  // application sends next.
  blocked_sends_.push_back(BlockedSend{mode, std::move(payload), core_->simulator->now(),
                                       std::move(core_->pending_deps)});
  core_->pending_deps.clear();
}

void MembershipLayer::OnJoinRequest(const JoinRequest& request) {
  if (std::binary_search(core_->view.members.begin(), core_->view.members.end(),
                         request.joiner())) {
    return;  // already a member
  }
  // Route to the coordinator (lowest live member); the coordinator folds the
  // join into a flush among the *current* members.
  MemberId coordinator = core_->view.members.front();
  for (MemberId member : core_->view.members) {
    if (!suspected_.count(member)) {
      coordinator = member;
      break;
    }
  }
  if (coordinator != core_->self) {
    ++core_->stats.flush_control_msgs;
    core_->transport->SendReliable(
        coordinator, GroupPorts::Membership(core_->config.group_id),
        std::make_shared<JoinRequest>(core_->config.group_id, request.joiner()));
    return;
  }
  if (pending_joiners_.insert(request.joiner()).second) {
    InitiateFlush();
  }
}

void MembershipLayer::SendHeartbeats() {
  auto hb = std::make_shared<Heartbeat>(core_->config.group_id, core_->view.id);
  if (core_->overlay_mode()) {
    // Overlay mode heartbeats only the tree links: those are the links whose
    // failure actually partitions dissemination, and all-to-all heartbeating
    // is O(N²) frames per interval — the other scaling wall at N=10k. A
    // detected neighbor failure still triggers the global flush protocol.
    for (MemberId neighbor : core_->overlay.neighbors()) {
      core_->transport->SendUnreliable(neighbor, GroupPorts::Membership(core_->config.group_id),
                                       hb);
    }
    return;
  }
  for (MemberId member : core_->view.members) {
    if (member != core_->self) {
      core_->transport->SendUnreliable(member, GroupPorts::Membership(core_->config.group_id), hb);
    }
  }
}

void MembershipLayer::CheckFailures() {
  const sim::TimePoint now = core_->simulator->now();
  for (MemberId member : core_->view.members) {
    if (member == core_->self || suspected_.count(member)) {
      continue;
    }
    // Overlay mode: we only *expect* heartbeats from tree neighbors, so
    // silence from anyone else is not evidence (SuspectNotice floods still
    // propagate remote suspicions group-wide).
    if (core_->overlay_mode() && !core_->overlay.IsNeighbor(member)) {
      continue;
    }
    auto it = last_heard_.find(member);
    if (it == last_heard_.end()) {
      // Never heard from it; give it a full timeout from when we started
      // checking by seeding the map lazily.
      last_heard_[member] = now;
      continue;
    }
    if (now - it->second > core_->config.failure_timeout) {
      HandleSuspicion(member);
    }
  }
}

void MembershipLayer::HandleSuspicion(MemberId suspect, bool deliberate) {
  if (suspect == core_->self ||
      !std::binary_search(core_->view.members.begin(), core_->view.members.end(), suspect)) {
    return;
  }
  // Fresh-evidence veto: a relayed suspicion (SuspectNotice hearsay, or a
  // transport give-up) is rejected while our own ears contradict it — we
  // heard the suspect within half a failure timeout. Local timeout-driven
  // suspicion is unaffected (CheckFailures only fires after a full silent
  // timeout). Without this, one member's lossy inbound path can evict a
  // member everyone else still hears, and the evicted-but-live member then
  // installs a rival view — a split brain from a single bad link.
  //
  // A deliberate report bypasses the veto: the evict-laggard policy sheds a
  // member *because* it is alive but too slow, so "we still hear it" is not
  // contradicting evidence. The evicted member wedges under the
  // primary-partition rule like any false suspicion would.
  auto heard = last_heard_.find(suspect);
  if (!deliberate && heard != last_heard_.end() &&
      core_->simulator->now() - heard->second < core_->config.failure_timeout / 2) {
    ++core_->stats.suspicions_vetoed;
    return;
  }
  if (!suspected_.insert(suspect).second) {
    return;  // already known
  }
  // Survivor with the lowest id coordinates the flush.
  MemberId coordinator = core_->self;
  for (MemberId member : core_->view.members) {
    if (!suspected_.count(member)) {
      coordinator = member;
      break;
    }
  }
  if (coordinator == core_->self) {
    InitiateFlush();
  } else {
    ++core_->stats.flush_control_msgs;
    core_->transport->SendReliable(coordinator, GroupPorts::Membership(core_->config.group_id),
                                   std::make_shared<SuspectNotice>(core_->config.group_id,
                                                                   suspect));
    // Also stop sending application traffic; the flush request will arrive.
  }
}

void MembershipLayer::InitiateFlush() {
  FlushPendingBatch(core_);
  const uint64_t new_view_id = std::max(core_->view.id, flush_view_id_) + 1;
  flush_view_id_ = new_view_id;
  if (!flushing_) {
    flushing_ = true;
    flush_started_ = core_->simulator->now();
  }
  flush_states_.clear();

  std::vector<MemberId> survivors;
  for (MemberId member : core_->view.members) {
    if (!suspected_.count(member)) {
      survivors.push_back(member);
    }
  }
  auto req = std::make_shared<FlushRequest>(core_->config.group_id, new_view_id, survivors);
  for (MemberId member : survivors) {
    if (member != core_->self) {
      ++core_->stats.flush_control_msgs;
      core_->transport->SendReliable(member, GroupPorts::Membership(core_->config.group_id), req);
    }
  }
  // Contribute our own state directly.
  FlushState own(core_->config.group_id, new_view_id, core_->causal->delivered(),
                 core_->stability->UnstableMessages(), core_->total->KnownAssignments(),
                 core_->total->next_total_deliver());
  OnFlushState(core_->self, own);
}

void MembershipLayer::OnFlushRequest(MemberId src, const FlushRequest& req) {
  if (req.new_view_id() <= core_->view.id) {
    return;  // stale
  }
  FlushPendingBatch(core_);
  flush_view_id_ = std::max(flush_view_id_, req.new_view_id());
  if (!flushing_) {
    flushing_ = true;
    flush_started_ = core_->simulator->now();
  }
  // Adopt the coordinator's suspicion set.
  for (MemberId member : core_->view.members) {
    if (std::find(req.survivors().begin(), req.survivors().end(), member) ==
        req.survivors().end()) {
      suspected_.insert(member);
    }
  }
  SendFlushStateTo(src, req.new_view_id());
}

void MembershipLayer::SendFlushStateTo(MemberId coordinator, uint64_t new_view_id) {
  auto state = std::make_shared<FlushState>(core_->config.group_id, new_view_id,
                                            core_->causal->delivered(),
                                            core_->stability->UnstableMessages(),
                                            core_->total->KnownAssignments(),
                                            core_->total->next_total_deliver());
  ++core_->stats.flush_control_msgs;
  core_->stats.flush_payload_bytes += state->SizeBytes();
  core_->transport->SendReliable(coordinator, GroupPorts::Membership(core_->config.group_id),
                                 state);
}

void MembershipLayer::OnFlushState(MemberId src, const FlushState& state) {
  if (state.new_view_id() != flush_view_id_ || !flushing_) {
    return;  // belongs to an abandoned round
  }
  flush_states_.insert_or_assign(src, state);
  MaybeCompleteFlush();
}

void MembershipLayer::MaybeCompleteFlush() {
  // Only the coordinator aggregates.
  std::vector<MemberId> survivors;
  for (MemberId member : core_->view.members) {
    if (!suspected_.count(member)) {
      survivors.push_back(member);
    }
  }
  if (survivors.empty() || survivors.front() != core_->self) {
    return;
  }

  // Primary-partition rule for suspicion-driven flushes: only a side holding
  // a strict majority of the departing view — or exactly half of it AND the
  // lowest member id as a deterministic tie-break — may install the next
  // view. The other side wedges in the flush instead of installing a rival
  // view and running as a split brain: an evicted-but-live member (false
  // suspicion under lossy links) stops, it does not secede. Pure join/leave
  // flushes (no suspects) carry the whole view and skip the check.
  if (!suspected_.empty()) {
    const size_t old_size = core_->view.members.size();
    const bool majority = survivors.size() * 2 > old_size;
    const bool half_with_anchor =
        survivors.size() * 2 == old_size &&
        std::find(survivors.begin(), survivors.end(), core_->view.members.front()) !=
            survivors.end();
    if (!majority && !half_with_anchor) {
      if (flush_view_id_ != quorum_blocked_view_) {
        quorum_blocked_view_ = flush_view_id_;
        ++core_->stats.flushes_blocked_no_quorum;
      }
      return;
    }
  }

  for (MemberId member : survivors) {
    if (!flush_states_.count(member)) {
      return;  // still waiting
    }
  }

  // 1. Union of all unstable messages any survivor holds.
  std::map<MessageId, GroupDataPtr> message_union;
  for (const auto& [member, state] : flush_states_) {
    for (const auto& msg : state.unstable()) {
      message_union.emplace(msg->id(), msg);
    }
  }

  // 2. The common delivery cut: per sender, the furthest any survivor got.
  //    Everything at or below the cut is either already delivered at a given
  //    survivor or present in the union (if a survivor delivered it and it
  //    was pruned as stable, then by definition of stability everyone
  //    delivered it already).
  VectorClock final_cut;
  for (const auto& [member, state] : flush_states_) {
    final_cut.Merge(state.delivered());
  }

  // 3. Consolidate total-order assignments. Assignments below `base` are
  //    fixed (some survivor may have delivered at that sequence). Assignments
  //    at or above `base` were issued but delivered nowhere; renumber them
  //    densely so a sequence assigned only by the failed sequencer cannot
  //    leave a permanent gap.
  uint64_t base = 1;
  for (const auto& [member, state] : flush_states_) {
    base = std::max(base, state.next_total_deliver());
  }
  std::map<MessageId, uint64_t> merged;
  std::map<uint64_t, MessageId> above_base;
  for (const auto& [member, state] : flush_states_) {
    for (const auto& [id, seq] : state.known_assignments()) {
      if (seq < base) {
        merged.emplace(id, seq);
      } else {
        above_base.emplace(seq, id);
      }
    }
  }
  uint64_t next_seq = base;
  for (const auto& [old_seq, id] : above_base) {
    if (!merged.count(id)) {
      merged.emplace(id, next_seq++);
    }
  }
  std::vector<std::pair<MessageId, uint64_t>> merged_vec(merged.begin(), merged.end());

  // 4. Per-survivor ViewInstall with exactly the messages it is missing.
  //    The self-install mutates flush state, so it runs last. Joiners become
  //    members of the new view; they adopt the delivery cut rather than
  //    receiving history.
  const uint64_t new_view_id = flush_view_id_;
  std::vector<MemberId> new_members = survivors;
  for (MemberId joiner : pending_joiners_) {
    new_members.push_back(joiner);
  }
  std::sort(new_members.begin(), new_members.end());
  for (MemberId joiner : pending_joiners_) {
    // Default join: adopt the group cut, no history, no snapshot.
    VectorClock joiner_cut = final_cut;
    std::vector<GroupDataPtr> joiner_missing;
    uint64_t joiner_next_deliver = next_seq;
    net::PayloadPtr app_state;
    if (core_->state_provider) {
      // State transfer: snapshot our application state, which corresponds
      // exactly to our app-delivered vector (the self-install that would
      // advance it runs after this loop). Everything past that cut is either
      // in some survivor's unstable retention buffer (message_union) or in
      // our own causally-delivered-but-not-yet-app-delivered backlog, so the
      // two sets together are a complete resend.
      app_state = core_->state_provider();
      joiner_cut = core_->fifo->app_delivered();
      joiner_next_deliver = core_->total->next_total_deliver();
      std::map<MessageId, GroupDataPtr> beyond = message_union;
      for (const auto& waiting : core_->fifo->pending()) {
        beyond.emplace(waiting.data->id(), waiting.data);
      }
      for (const auto& [id, msg] : beyond) {
        if (id.seq > core_->fifo->app_delivered().Get(id.sender)) {
          joiner_missing.push_back(StripPiggyback(msg));
        }
      }
    }
    auto install = std::make_shared<ViewInstall>(core_->config.group_id, new_view_id, new_members,
                                                 std::move(joiner_missing), merged_vec, next_seq,
                                                 std::move(joiner_cut), joiner_next_deliver,
                                                 std::move(app_state));
    ++core_->stats.flush_control_msgs;
    core_->stats.flush_payload_bytes += install->SizeBytes();
    core_->transport->SendReliable(joiner, GroupPorts::Membership(core_->config.group_id),
                                   install);
  }
  pending_joiners_.clear();
  std::shared_ptr<ViewInstall> own_install;
  for (MemberId member : survivors) {
    const FlushState& state = flush_states_.at(member);
    std::vector<GroupDataPtr> missing;
    for (const auto& [id, msg] : message_union) {
      if (id.seq > state.delivered().Get(id.sender)) {
        missing.push_back(msg);
      }
    }
    auto install = std::make_shared<ViewInstall>(core_->config.group_id, new_view_id, new_members,
                                                 std::move(missing), merged_vec, next_seq,
                                                 final_cut);
    if (member == core_->self) {
      own_install = std::move(install);
    } else {
      ++core_->stats.flush_control_msgs;
      core_->stats.flush_payload_bytes += install->SizeBytes();
      core_->transport->SendReliable(member, GroupPorts::Membership(core_->config.group_id),
                                     install);
    }
  }
  if (own_install) {
    OnViewInstall(*own_install);
  }
}

void MembershipLayer::OnViewInstall(const ViewInstall& install) {
  if (install.view_id() <= core_->view.id) {
    return;
  }

  // A joiner starts at the cut its install names: by default the group's
  // common delivery cut (history it never sees, by design), or — under state
  // transfer — the coordinator's app-delivered vector, after installing the
  // snapshot that corresponds to it. The cut merges *before* ingesting below
  // so the re-forwarded post-cut messages flow through the normal causal
  // path from exactly where the snapshot left off.
  const bool was_joining = joining_;
  if (joining_) {
    if (install.app_state() != nullptr && core_->state_applier) {
      core_->state_applier(install.app_state());
    }
    core_->causal->AdoptCut(install.final_cut());
    core_->fifo->AdoptCut(install.final_cut());
    core_->total->AdoptJoinerFloor(install.next_total_deliver());
    joining_ = false;
  }

  // Ingest redistributed messages through the normal causal path.
  for (const auto& msg : install.missing()) {
    core_->causal->Ingest(msg);
  }

  // Failed-sender cleanup (see CausalLayer::DropFailedSenderBacklog): vd/ad
  // must NOT be force-raised to the cut — everything at or below it flows
  // through the normal causal path, and raising the app gate early would let
  // causal successors overtake it at the application (a real causal-order
  // violation the chaos fuzzer caught). A joiner skips this: its install's
  // cut is the floor it starts from.
  if (!was_joining) {
    core_->causal->DropFailedSenderBacklog(install);
  }
  core_->causal->TryDeliverPending();

  // Adopt the consolidated total order (supersedes anything we hold).
  core_->total->AdoptConsolidatedOrder(install);

  // Install the view.
  core_->view.id = install.view_id();
  core_->view.members = install.members();
  std::sort(core_->view.members.begin(), core_->view.members.end());
  // The overlay is a pure function of the (sorted) member list — rebuild
  // before the layers react so stability's report set and causal's stash
  // drain both see the new tree.
  core_->RebuildOverlay();
  core_->stability->OnViewChange(core_->view);
  core_->causal->OnViewChange(core_->view);
  for (MemberId gone : suspected_) {
    last_heard_.erase(gone);
  }
  suspected_.clear();
  flush_states_.clear();

  // The total-order layer re-seeds its sequencer/token for the new view.
  core_->total->OnViewChange(core_->view);
  core_->fifo->TryDeliverApp();

  // Unblock.
  if (flushing_) {
    flushing_ = false;
    ++core_->stats.flushes_completed;
    core_->stats.blocked_time += core_->simulator->now() - flush_started_;
  }
  if (core_->view_handler) {
    core_->view_handler(core_->view);
  }
  FinishBlockedSends();
}

void MembershipLayer::FinishBlockedSends() {
  while (!blocked_sends_.empty() && !flushing_) {
    BlockedSend blocked = std::move(blocked_sends_.front());
    blocked_sends_.pop_front();
    if (core_->observing()) {
      core_->pipeline_stats.RecordRelease(HoldReason::kFlushBlocked,
                                          core_->simulator->now() - blocked.queued_at);
    }
    core_->pending_deps = std::move(blocked.deps);
    // Re-issue outside flow admission: the send was admitted when it was
    // queued, and shedding or backpressuring it now would silently lose an
    // accepted message.
    const MessageId id =
        core_->member->ReissueBlockedSend(blocked.mode, std::move(blocked.payload)).id;
    // Flush-block provenance: the whole group stopped sending, a wait no
    // per-message semantic dependency asked for. Keyed by the id the send
    // finally got; zero ids (dropped or re-queued) are skipped.
    if (id.seq != 0) {
      core_->RecordHoldProvenance(id, name(), blocked.queued_at);
    }
  }
}

}  // namespace catocs
