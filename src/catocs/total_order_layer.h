// Total ordering (abcast): a single group-wide sequence consistent with
// causality, assigned either by a fixed sequencer (lowest member id) or by a
// rotating token. This layer owns sequence assignment and the delivery
// counter; the FIFO layer consults it for the "is it my turn" check on every
// kTotal delivery.

#ifndef REPRO_SRC_CATOCS_TOTAL_ORDER_LAYER_H_
#define REPRO_SRC_CATOCS_TOTAL_ORDER_LAYER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "src/catocs/layer.h"
#include "src/mem/arena.h"

namespace catocs {

class TotalOrderLayer : public OrderingLayer {
 public:
  explicit TotalOrderLayer(GroupCore* core) : OrderingLayer(core) { core->total = this; }

  const char* name() const override { return "total-order"; }

  void OnStart() override;
  void OnStop() override { holding_token_ = false; }
  bool OnReceive(MemberId src, uint32_t port, const net::PayloadPtr& payload) override;
  // After a view install: the new sequencer orders any held messages that
  // lost their assignment with the old sequencer; in token mode the lowest
  // survivor re-seeds the token.
  void OnViewChange(const View& view) override;

  // Sequencing hook on the causal-delivery path: the sequencer assigns
  // immediately; token holders queue until their turn.
  void OnCausalDeliver(const GroupData& data);

  // --- FIFO-layer gate ------------------------------------------------------
  bool IsNextToDeliver(const MessageId& id) const;
  // Claims the next delivery slot for the message being delivered now.
  uint64_t ConsumeDeliverySlot();

  // --- membership/flush support ---------------------------------------------
  uint64_t next_total_deliver() const { return next_total_deliver_; }
  std::vector<std::pair<MessageId, uint64_t>> KnownAssignments() const;
  // Joiner: start delivering at the cut its install names.
  void AdoptJoinerFloor(uint64_t next_deliver);
  // Adopt the coordinator's consolidated total order *authoritatively*. The
  // coordinator merged every survivor's known assignments (renumbering those
  // at or above the delivery base to close gaps left by a dead sequencer),
  // so the merged map supersedes anything we hold — including a stale
  // in-flight assignment from the old sequencer that the renumbering moved.
  void AdoptConsolidatedOrder(const ViewInstall& install);

 private:
  void SequencerAssign(const MessageId& id);
  // Used at view changes and token turns: sequence every causally delivered
  // but still unordered kTotal message, in local (causal) delivery order.
  std::vector<std::pair<MessageId, uint64_t>> AssignPendingUnorderedTotals();
  void ApplyAssignments(const std::vector<std::pair<MessageId, uint64_t>>& assignments);
  void OnOrder(const net::PayloadPtr& payload);
  void OnToken(const net::PayloadPtr& payload);
  void PassToken(uint64_t next_total_seq);
  // Reports pending-set occupancy (known-but-undelivered assignments plus
  // unsequenced totals) to the group budget. No-op when unbounded.
  void SyncBudget();

  uint64_t next_total_assign_ = 1;  // sequencer/token holder only
  uint64_t next_total_deliver_ = 1;
  std::map<uint64_t, MessageId> order_by_seq_;
  std::map<MessageId, uint64_t> seq_by_id_;
  // Rolling window of recent assignments carried by the token so the next
  // holder cannot double-assign a message whose OrderAssignment broadcast is
  // still in flight. Older assignments have long since been delivered by the
  // reliable broadcast, so a bounded window suffices. Kept as a flat vector
  // sorted by seq — the window is append-mostly and trimmed from the front,
  // and every token pass walks it linearly, so a node-per-entry map bought
  // nothing but cache misses.
  static constexpr uint64_t kTokenAssignmentWindow = 512;
  using SeqAssignment = std::pair<uint64_t, MessageId>;
  void MergeRecentAssignments(SeqAssignment* fresh, size_t n);
  std::vector<SeqAssignment> recent_assignments_;  // sorted by seq ascending
  // Scratch for the merge (and for staging accepted assignments); reset at
  // the end of every ApplyAssignments, so lifetimes never escape the call.
  mem::Arena scratch_;
  // Token mode: causally delivered kTotal messages not yet sequenced, in
  // local causal delivery order (a linear extension of happens-before).
  std::deque<MessageId> unassigned_total_;
  bool holding_token_ = false;
  // Observability: when each causally delivered kTotal message started
  // waiting for its sequence assignment (empty unless observing).
  std::map<MessageId, sim::TimePoint> awaiting_assign_;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_TOTAL_ORDER_LAYER_H_
