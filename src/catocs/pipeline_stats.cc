#include "src/catocs/pipeline_stats.h"

#include <algorithm>
#include <sstream>

namespace catocs {

const char* ToString(HoldReason reason) {
  switch (reason) {
    case HoldReason::kCausalGap:
      return "causal-gap";
    case HoldReason::kFifoGap:
      return "fifo-gap";
    case HoldReason::kTotalTurn:
      return "total-turn";
    case HoldReason::kOrderAssign:
      return "order-assign";
    case HoldReason::kStability:
      return "stability";
    case HoldReason::kFlushBlocked:
      return "flush-blocked";
  }
  return "?";
}

const char* LayerOf(HoldReason reason) {
  switch (reason) {
    case HoldReason::kCausalGap:
      return "causal";
    case HoldReason::kFifoGap:
    case HoldReason::kTotalTurn:
      return "fifo";
    case HoldReason::kOrderAssign:
      return "total-order";
    case HoldReason::kStability:
      return "stability";
    case HoldReason::kFlushBlocked:
      return "membership";
  }
  return "?";
}

void PipelineStats::RecordRelease(HoldReason r, sim::Duration hold) {
  HoldStat& stat = reason(r);
  ++stat.released;
  if (hold > sim::Duration::Zero()) {
    ++stat.held;
    stat.total_hold += hold;
    stat.max_hold = std::max(stat.max_hold, hold);
  }
}

void PipelineStats::Merge(const PipelineStats& other) {
  for (size_t i = 0; i < kNumHoldReasons; ++i) {
    HoldStat& mine = by_reason[i];
    const HoldStat& theirs = other.by_reason[i];
    mine.entered += theirs.entered;
    mine.released += theirs.released;
    mine.held += theirs.held;
    mine.total_hold += theirs.total_hold;
    mine.max_hold = std::max(mine.max_hold, theirs.max_hold);
  }
  budget.pressure_high += other.budget.pressure_high;
  budget.pressure_critical += other.budget.pressure_critical;
  budget.pressure_epochs += other.budget.pressure_epochs;
  budget.peak_bytes = std::max(budget.peak_bytes, other.budget.peak_bytes);
  budget.peak_messages = std::max(budget.peak_messages, other.budget.peak_messages);
}

uint64_t PipelineStats::TotalEntered() const {
  uint64_t total = 0;
  for (const auto& stat : by_reason) {
    total += stat.entered;
  }
  return total;
}

uint64_t PipelineStats::TotalReleased() const {
  uint64_t total = 0;
  for (const auto& stat : by_reason) {
    total += stat.released;
  }
  return total;
}

sim::Duration PipelineStats::TotalHold() const {
  sim::Duration total = sim::Duration::Zero();
  for (const auto& stat : by_reason) {
    total += stat.total_hold;
  }
  return total;
}

void PipelineStats::ExportTo(sim::MetricsRegistry& registry, const std::string& node) const {
  for (size_t i = 0; i < kNumHoldReasons; ++i) {
    const auto r = static_cast<HoldReason>(i);
    const HoldStat& stat = by_reason[i];
    if (stat.entered == 0) {
      continue;
    }
    const sim::MetricsRegistry::Labels labels{
        {"node", node}, {"layer", LayerOf(r)}, {"reason", ToString(r)}};
    registry.GetCounter("pipeline_entered", labels).Add(static_cast<int64_t>(stat.entered));
    registry.GetCounter("pipeline_released", labels).Add(static_cast<int64_t>(stat.released));
    registry.GetCounter("pipeline_held", labels).Add(static_cast<int64_t>(stat.held));
    registry.GetCounter("pipeline_hold_us", labels)
        .Add(stat.total_hold.nanos() / 1000);
    sim::Gauge& max_us = registry.GetGauge("pipeline_max_hold_us", labels);
    max_us.Set(std::max(max_us.value(), stat.max_hold.nanos() / 1000));
  }
  if (budget.any()) {
    const sim::MetricsRegistry::Labels labels{{"node", node}};
    registry.GetCounter("budget_pressure_high", labels)
        .Add(static_cast<int64_t>(budget.pressure_high));
    registry.GetCounter("budget_pressure_critical", labels)
        .Add(static_cast<int64_t>(budget.pressure_critical));
    registry.GetCounter("budget_pressure_epochs", labels)
        .Add(static_cast<int64_t>(budget.pressure_epochs));
    sim::Gauge& peak_b = registry.GetGauge("budget_peak_bytes", labels);
    peak_b.Set(std::max<int64_t>(peak_b.value(), static_cast<int64_t>(budget.peak_bytes)));
    sim::Gauge& peak_m = registry.GetGauge("budget_peak_messages", labels);
    peak_m.Set(std::max<int64_t>(peak_m.value(), static_cast<int64_t>(budget.peak_messages)));
  }
}

std::string PipelineStats::Summary() const {
  std::ostringstream out;
  for (size_t i = 0; i < kNumHoldReasons; ++i) {
    const auto r = static_cast<HoldReason>(i);
    const HoldStat& stat = by_reason[i];
    if (stat.entered == 0) {
      continue;
    }
    out << LayerOf(r) << "/" << ToString(r) << ": entered=" << stat.entered
        << " released=" << stat.released << " held=" << stat.held
        << " total=" << stat.total_hold.ToString() << " max=" << stat.max_hold.ToString() << "\n";
  }
  if (budget.any()) {
    out << "budget: peak_bytes=" << budget.peak_bytes << " peak_messages=" << budget.peak_messages
        << " high=" << budget.pressure_high << " critical=" << budget.pressure_critical
        << " epochs=" << budget.pressure_epochs << "\n";
  }
  return out.str();
}

}  // namespace catocs
