#include "src/catocs/overlay_buffer.h"

#include <algorithm>

namespace catocs {

void OverlayCausalStrategy::SetMembers(const std::vector<MemberId>& members) {
  members_ = members;
  std::sort(members_.begin(), members_.end());
  // Evicted senders can never be acked under their old id again; drop any
  // non-contiguous overflow strays they left behind (retention_ring.h).
  buffer_.PurgeOverflowNotIn(members_, [this](const GroupDataPtr& msg) {
    buffered_bytes_ -= msg->SizeBytes() + msg->HeaderBytes();
    NotifyRelease(msg, "evicted-sender");
  });
  ChargeBudget(buffered_bytes_, buffer_.count());
}

void OverlayCausalStrategy::SetReportSet(MemberId self, const std::vector<MemberId>& children) {
  self_ = self;
  report_set_.clear();
  report_set_.push_back(self);
  for (MemberId child : children) {
    report_set_.push_back(child);
  }
  std::sort(report_set_.begin(), report_set_.end());
  // Child reports were computed against the previous tree's subtrees; only
  // self's own delivered-vector survives a rewire (it is tree-independent).
  reports_.erase(std::remove_if(reports_.begin(), reports_.end(),
                                [self](const std::pair<MemberId, VectorClock>& row) {
                                  return row.first != self;
                                }),
                 reports_.end());
  row_cache_ = 0;
}

void OverlayCausalStrategy::UpdateMemberVector(MemberId member, const VectorClock& vec) {
  MatrixRowCached(reports_, member, row_cache_).Merge(vec);
}

void OverlayCausalStrategy::UpdateMemberEntry(MemberId member, MemberId sender, uint64_t count) {
  VectorClock& row = MatrixRowCached(reports_, member, row_cache_);
  if (count > row.Get(sender)) {
    row.RaiseTo(sender, count);
  }
}

void OverlayCausalStrategy::AddToBuffer(const GroupDataPtr& msg) {
  if (msg->id().seq <= floor_.Get(msg->id().sender)) {
    return;  // already announced stable; nothing to retain
  }
  if (!buffer_.Add(msg)) {
    return;
  }
  buffered_bytes_ += msg->SizeBytes() + msg->HeaderBytes();
  peak_count_ = std::max(peak_count_, buffer_.count());
  peak_bytes_ = std::max(peak_bytes_, buffered_bytes_);
  ChargeBudget(buffered_bytes_, buffer_.count());
}

VectorClock OverlayCausalStrategy::SubtreeFloor() const {
  VectorClock out;
  bool first = true;
  for (MemberId member : report_set_) {
    const VectorClock* row = MatrixRowIfPresent(reports_, member);
    if (row == nullptr || row->empty()) {
      // An unreported subtree pins everything: nothing is provably delivered
      // below it yet (the empty-row rule every strategy shares).
      return VectorClock{};
    }
    if (first) {
      out = *row;
      first = false;
    } else {
      out.MeetMin(*row);
    }
  }
  return out;
}

MemberId OverlayCausalStrategy::SlowestMemberFor(MemberId sender) const {
  // Only the local subtree is visible here; the slowest *reporter* is the
  // honest local answer (a laggard deeper down surfaces as its subtree
  // root's report, which is the link this member could act on).
  MemberId slowest = 0;
  uint64_t lowest = UINT64_MAX;
  for (MemberId member : report_set_) {
    const VectorClock* row = MatrixRowIfPresent(reports_, member);
    const uint64_t delivered = row == nullptr ? 0 : row->Get(sender);
    if (delivered < lowest) {
      lowest = delivered;
      slowest = member;
    }
  }
  return slowest;
}

bool OverlayCausalStrategy::AdoptFloor(const VectorClock& announced) {
  bool advanced = false;
  for (const auto& [sender, count] : announced.entries()) {
    if (count > floor_.Get(sender)) {
      floor_.RaiseTo(sender, count);
      advanced = true;
    }
  }
  if (advanced) {
    ReleaseUnderFloor("floor");
  }
  return advanced;
}

void OverlayCausalStrategy::ReleaseUnderFloor(const char* cause) {
  if (floor_.empty()) {
    return;
  }
  buffer_.ReleaseStable(floor_, [this, cause](const GroupDataPtr& msg) {
    buffered_bytes_ -= msg->SizeBytes() + msg->HeaderBytes();
    NotifyRelease(msg, cause);
  });
  ChargeBudget(buffered_bytes_, buffer_.count());
}

void OverlayCausalStrategy::Prune() { ReleaseUnderFloor("floor-sweep"); }

std::vector<GroupDataPtr> OverlayCausalStrategy::UnstableMessages() const {
  return buffer_.CollectAll();
}

GroupDataPtr OverlayCausalStrategy::Find(const MessageId& id) const { return buffer_.Find(id); }

}  // namespace catocs
