// The composable protocol pipeline's building blocks.
//
// Each CATOCS concern — causal delay queue, per-sender FIFO app gate, total
// ordering, stability buffering, view-synchronous membership — lives in its
// own OrderingLayer. Layers share one GroupCore (identity, view, config,
// stats, handlers) and reach each other through the core's typed pointers:
// the delivery cascade is a series of direct, synchronous calls in protocol
// order (causal -> stability -> total -> fifo -> application), exactly the
// call graph the monolithic GroupMember had, so behaviour is preserved
// bit-for-bit while each stage stays independently replaceable.
//
// The uniform hooks (OnStart/OnStop/OnSend/OnReceive/TryDeliver/OnViewChange)
// are what the Pipeline drives generically; protocol-specific cross-layer
// calls (e.g. the causal layer handing a delivery to the stability layer) go
// through the typed pointers because their ordering is part of the protocol,
// not of the stacking.

#ifndef REPRO_SRC_CATOCS_LAYER_H_
#define REPRO_SRC_CATOCS_LAYER_H_

#include <cassert>
#include <vector>

#include "src/catocs/message.h"
#include "src/catocs/pipeline_stats.h"
#include "src/catocs/types.h"
#include "src/net/overlay.h"
#include "src/net/transport.h"
#include "src/obs/provenance.h"
#include "src/sim/simulator.h"

namespace catocs {

class CausalLayer;
class FifoLayer;
class FlowController;
class GroupMember;
class MembershipLayer;
class SenderBatcher;
class StabilityLayer;
class TotalOrderLayer;

// Port layout: each group uses a contiguous block so several groups can
// share a transport. (GroupMember re-exports these as its static port
// accessors; the formulas live here so layers never depend on the facade.)
struct GroupPorts {
  static uint32_t Data(GroupId g) { return 0x0C000000u + g * 8; }
  static uint32_t Order(GroupId g) { return 0x0C000001u + g * 8; }
  static uint32_t Ack(GroupId g) { return 0x0C000002u + g * 8; }
  static uint32_t Token(GroupId g) { return 0x0C000003u + g * 8; }
  static uint32_t Membership(GroupId g) { return 0x0C000004u + g * 8; }
};

// State and services shared by every layer of one member's pipeline. Owned
// by the GroupMember facade; layers hold a pointer and register themselves
// in their constructors.
struct GroupCore {
  sim::Simulator* simulator = nullptr;
  net::Transport* transport = nullptr;
  GroupConfig config;
  MemberId self = 0;
  View view;
  GroupStats stats;
  DeliveryHandler delivery_handler;
  ViewHandler view_handler;
  StateProvider state_provider;
  StateApplier state_applier;
  bool started = false;

  // The facade, for the one genuinely top-level re-entry: releasing sends
  // that were queued while a flush blocked the group.
  GroupMember* member = nullptr;

  // Typed siblings, filled in as each layer constructs.
  CausalLayer* causal = nullptr;
  FifoLayer* fifo = nullptr;
  StabilityLayer* stability = nullptr;
  MembershipLayer* membership = nullptr;
  TotalOrderLayer* total = nullptr;
  // Sender-side batcher (config.batching > 1); null on unbatched members so
  // the default path never even tests a batching branch beyond this pointer.
  SenderBatcher* batcher = nullptr;
  // Sender-side flow control (config.send_window > 0 or a bounded budget);
  // null by default, same pointer discipline as the batcher.
  FlowController* flow = nullptr;

  // Bounded-resource ledger (DESIGN.md §10): charged by the retention
  // strategy, the batcher, the total-order pending set, and the transport
  // send queues — only when config.budget is bounded, so the default path
  // never touches it.
  ResourceBudget budget;

  // Per-layer hold-time attribution, populated only under
  // config.observability (see pipeline_stats.h).
  PipelineStats pipeline_stats;

  // Semantic dependencies declared for this member's next ordered send
  // (GroupMember::DeclareDependency); attached to the message when its id is
  // allocated, preserved across a flush-blocked queue round trip.
  std::vector<MessageId> pending_deps;

  // Spanning overlay for the constant-metadata dissemination path
  // (DESIGN.md §11). Only meaningful in overlay mode; rebuilt from the
  // sorted member list at construction and at every view install, so every
  // member computes the same tree without negotiation.
  net::SpanningOverlay overlay;

  // Overlay mode changes the send path itself (tree flooding instead of
  // direct multicast), not just the retention strategy — layers branch on
  // this, and everything behind it is unreachable at the default config.
  bool overlay_mode() const { return config.causal_buffer == CausalBufferKind::kOverlay; }

  void RebuildOverlay() {
    if (overlay_mode()) {
      overlay.Rebuild(view.members, self);
    }
  }

  bool observing() const { return config.observability; }

  // The provenance recorder, iff this member is actually instrumented.
  obs::ProvenanceRecorder* provenance() const {
    return config.observability ? config.provenance : nullptr;
  }

  // Gap provenance for a wait released at `now`: classifies the hold as
  // false or necessary causality against the semantic graph (no-op without
  // a recorder, for zero-length waits, and for unkeyed messages).
  void RecordHoldProvenance(const MessageId& id, const char* layer, sim::TimePoint entered,
                            bool gates_delivery = true) {
    obs::ProvenanceRecorder* recorder = provenance();
    if (recorder != nullptr) {
      recorder->RecordHold(SpanKey(id), self, layer, entered, simulator->now(), gates_delivery);
    }
  }

  // Delivery provenance: the potential-causality frontier a message's
  // timestamp implies — the newest predecessor per clock entry, plus the
  // sender's own previous message (the FIFO edge).
  void RecordDeliveryProvenance(const GroupData& data) {
    obs::ProvenanceRecorder* recorder = provenance();
    if (recorder == nullptr) {
      return;
    }
    std::vector<obs::MsgKey> frontier;
    frontier.reserve(data.vt().entry_count());
    for (const auto& [member, value] : data.vt().entries()) {
      if (member == data.id().sender) {
        if (data.id().seq > 1) {
          frontier.push_back(SpanKey(MessageId{member, data.id().seq - 1}));
        }
      } else {
        frontier.push_back(SpanKey(MessageId{member, value}));
      }
    }
    recorder->RecordDelivery(SpanKey(data.id()), self, simulator->now(), frontier);
  }

  // Span emission helper: no-op unless observability is on AND the
  // simulator's span recorder is enabled, so layers can call this
  // unconditionally on instrumented paths.
  void RecordSpan(const MessageId& id, sim::SpanEvent event, const char* layer,
                  std::string note = {}) {
    if (!config.observability) {
      return;
    }
    simulator->spans().Record(SpanKey(id), self, simulator->now(), event, layer,
                              std::move(note));
  }

  bool IsSequencer() const { return self == Sequencer(); }
  MemberId Sequencer() const {
    assert(!view.members.empty());
    return view.members.front();
  }

  void BroadcastReliable(uint32_t port, const net::PayloadPtr& payload) {
    for (MemberId m : view.members) {
      if (m != self) {
        transport->SendReliable(m, port, payload);
      }
    }
  }

  // Refreshes the transport-queue component of the budget from the
  // transport's unacked-occupancy counters. Called after reliable sends and
  // on flow-control ticks; a no-op when the budget is unbounded.
  void SyncTransportBudget() {
    if (budget.bounded()) {
      budget.Set(ResourceBudget::kTransportQueue, transport->queued_bytes(),
                 transport->queued_segments());
    }
  }
};

class OrderingLayer {
 public:
  explicit OrderingLayer(GroupCore* core) : core_(core) {}
  virtual ~OrderingLayer() = default;

  OrderingLayer(const OrderingLayer&) = delete;
  OrderingLayer& operator=(const OrderingLayer&) = delete;

  virtual const char* name() const = 0;

  // Background machinery (timers, token seeding). Called in stack order.
  virtual void OnStart() {}
  virtual void OnStop() {}

  // Stamp an outgoing ordered message's headers before first transmission.
  // Called in stack order; each layer owns a disjoint header section.
  virtual void OnSend(GroupData& data) { (void)data; }

  // Offer an incoming transport payload. Returns true when this layer owns
  // the port and consumed the message.
  virtual bool OnReceive(MemberId src, uint32_t port, const net::PayloadPtr& payload) {
    (void)src;
    (void)port;
    (void)payload;
    return false;
  }

  // Re-attempt any deliveries this layer is holding back.
  virtual void TryDeliver() {}

  // A new view was installed. The membership layer drives the full
  // view-install sequence itself (its steps interleave with its own state);
  // this hook is each layer's reaction once the new view is in place.
  virtual void OnViewChange(const View& view) { (void)view; }

 protected:
  GroupCore* core_;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_LAYER_H_
