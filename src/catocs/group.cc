#include "src/catocs/group.h"

#include <map>
#include <sstream>
#include <utility>

namespace catocs {

GroupFabric::GroupFabric(sim::Simulator* simulator, FabricConfig config)
    : GroupFabric(simulator, config,
                  std::make_unique<net::UniformLatency>(config.latency_lo, config.latency_hi)) {}

GroupFabric::GroupFabric(sim::Simulator* simulator, FabricConfig config,
                         std::unique_ptr<net::LatencyModel> latency)
    : simulator_(simulator), config_(std::move(config)) {
  network_ = std::make_unique<net::Network>(simulator_, std::move(latency), config_.network);
  std::vector<MemberId> ids;
  ids.reserve(config_.num_members);
  for (uint32_t i = 0; i < config_.num_members; ++i) {
    ids.push_back(IdOf(i));
  }
  for (uint32_t i = 0; i < config_.num_members; ++i) {
    transports_.push_back(
        std::make_unique<net::Transport>(simulator_, network_.get(), ids[i], config_.transport));
    members_.push_back(std::make_unique<GroupMember>(simulator_, transports_.back().get(),
                                                     config_.group, ids[i], ids));
  }
}

GroupFabric::~GroupFabric() = default;

void GroupFabric::StartAll() {
  for (auto& member : members_) {
    member->Start();
  }
}

void GroupFabric::CrashMember(size_t index) {
  members_[index]->Stop();
  network_->SetNodeUp(IdOf(index), false);
  transports_[index]->ResetPeerState();
}

void GroupFabric::RecordDeliveries() {
  records_.clear();
  for (size_t i = 0; i < members_.size(); ++i) {
    const MemberId id = IdOf(i);
    members_[i]->SetDeliveryHandler(
        [this, id](const Delivery& delivery) { records_.push_back(Record{id, delivery}); });
  }
}

std::vector<MessageId> GroupFabric::DeliveryOrderAt(size_t index) const {
  std::vector<MessageId> out;
  const MemberId id = IdOf(index);
  for (const auto& record : records_) {
    if (record.at == id) {
      out.push_back(record.delivery.id());
    }
  }
  return out;
}

std::string CheckCausalDeliveryInvariant(const std::vector<GroupFabric::Record>& records) {
  // Group records by member, preserving delivery order.
  std::map<MemberId, std::vector<const GroupFabric::Record*>> by_member;
  for (const auto& record : records) {
    if (record.delivery.mode() == OrderingMode::kUnordered) {
      continue;
    }
    by_member[record.at].push_back(&record);
  }
  for (const auto& [member, sequence] : by_member) {
    for (size_t later = 0; later < sequence.size(); ++later) {
      for (size_t earlier = later + 1; earlier < sequence.size(); ++earlier) {
        // sequence[earlier] was delivered after sequence[later]; it must not
        // happen-before it.
        const CausalOrder order =
            sequence[earlier]->delivery.vt().Compare(sequence[later]->delivery.vt());
        if (order == CausalOrder::kBefore) {
          std::ostringstream out;
          out << "member " << member << ": " << sequence[earlier]->delivery.id().ToString()
              << " happens-before " << sequence[later]->delivery.id().ToString()
              << " but was delivered after it";
          return out.str();
        }
      }
    }
  }
  return "";
}

std::string CheckCausalOrderLinear(const std::vector<GroupFabric::Record>& records) {
  std::map<MemberId, VectorClock> watermark;  // per member: max over delivered vts
  for (const auto& record : records) {
    if (record.delivery.mode() == OrderingMode::kUnordered) {
      continue;
    }
    const MessageId id = record.delivery.id();
    VectorClock& h = watermark[record.at];
    // Check before merging: the message's own timestamp counts itself.
    if (h.Get(id.sender) >= id.seq) {
      std::ostringstream out;
      out << "member " << record.at << ": " << id.ToString()
          << " delivered after a message that already counted it (watermark "
          << h.Get(id.sender) << " >= seq " << id.seq << ")";
      return out.str();
    }
    h.Merge(record.delivery.vt());
  }
  return "";
}

std::string CheckTotalOrderInvariant(const std::vector<GroupFabric::Record>& records) {
  std::map<MemberId, std::vector<std::pair<uint64_t, MessageId>>> by_member;
  for (const auto& record : records) {
    if (record.delivery.mode() != OrderingMode::kTotal) {
      continue;
    }
    by_member[record.at].emplace_back(record.delivery.total_seq, record.delivery.id());
  }
  // 1. Each member's total sequence must be strictly increasing (delivery in
  //    sequence order).
  for (const auto& [member, sequence] : by_member) {
    for (size_t i = 1; i < sequence.size(); ++i) {
      if (sequence[i].first <= sequence[i - 1].first) {
        std::ostringstream out;
        out << "member " << member << ": total seq not increasing at position " << i;
        return out.str();
      }
    }
  }
  // 2. The same sequence number maps to the same message everywhere.
  std::map<uint64_t, MessageId> seq_to_id;
  for (const auto& [member, sequence] : by_member) {
    for (const auto& [seq, id] : sequence) {
      auto [it, inserted] = seq_to_id.emplace(seq, id);
      if (!inserted && !(it->second == id)) {
        std::ostringstream out;
        out << "total seq " << seq << " delivered as " << id.ToString() << " at member " << member
            << " but as " << it->second.ToString() << " elsewhere";
        return out.str();
      }
    }
  }
  return "";
}

std::string CheckFifoInvariant(const std::vector<GroupFabric::Record>& records) {
  std::map<std::pair<MemberId, MemberId>, uint64_t> last_seq;  // (at, sender) -> seq
  for (const auto& record : records) {
    if (record.delivery.mode() == OrderingMode::kUnordered) {
      continue;
    }
    uint64_t& last = last_seq[{record.at, record.delivery.id().sender}];
    if (record.delivery.id().seq <= last) {
      std::ostringstream out;
      out << "member " << record.at << ": message " << record.delivery.id().ToString()
          << " delivered after seq " << last << " from the same sender";
      return out.str();
    }
    last = record.delivery.id().seq;
  }
  return "";
}

}  // namespace catocs
