// Per-sender retention storage for the causal-buffer strategies.
//
// Causal delivery hands a strategy each sender's messages in contiguous
// sequence order, and stability only ever releases a prefix of each
// sender's retained run — so retention is naturally a deque per sender, not
// one big ordered map. Insertion and release are O(1) amortized per message
// (the map's node allocation and rebalancing were the single largest cost
// on the per-delivery hot path at N=64), while lookups and the
// MessageId-ordered walks the flush protocol needs stay available because
// sender lanes are kept sorted.
//
// Messages that break a lane's contiguity (possible only through direct
// strategy use — the causal layer's delivery discipline never produces
// them) fall back to an ordered overflow map, and all traversals merge the
// two sources so the observable order is exactly that of the original
// MessageId-keyed map.

#ifndef REPRO_SRC_CATOCS_RETENTION_RING_H_
#define REPRO_SRC_CATOCS_RETENTION_RING_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/catocs/message.h"

namespace catocs {

class RetentionRing {
 public:
  // Retains msg; false if an identical id is already held.
  bool Add(const GroupDataPtr& msg) {
    const MessageId id = msg->id();
    Lane& lane = LaneFor(id.sender);
    if (lane.msgs.empty()) {
      lane.first_seq = id.seq;
      lane.msgs.push_back(msg);
    } else if (id.seq == lane.first_seq + lane.msgs.size()) {
      lane.msgs.push_back(msg);
    } else if (id.seq >= lane.first_seq && id.seq < lane.first_seq + lane.msgs.size()) {
      return false;  // duplicate of a retained message
    } else {
      if (!overflow_.emplace(id, msg).second) {
        return false;
      }
    }
    ++count_;
    return true;
  }

  // Releases every retained message from `sender` with seq <= floor, oldest
  // first, invoking fn(msg) on each before it is dropped.
  template <typename Fn>
  void Release(MemberId sender, uint64_t floor, Fn&& fn) {
    if (!overflow_.empty()) {
      ReleaseOverflowRange(sender, 0, floor, fn);
    }
    if (Lane* lane = FindLane(sender)) {
      while (!lane->msgs.empty() && lane->first_seq <= floor) {
        const GroupDataPtr msg = std::move(lane->msgs.front());
        lane->msgs.pop_front();
        ++lane->first_seq;
        --count_;
        fn(msg);
      }
    }
  }

  // Releases across all senders against a per-sender floor vector, in
  // (sender, seq) order — the walk order of a MessageId-keyed map.
  template <typename Fn>
  void ReleaseStable(const VectorClock& floor, Fn&& fn) {
    for (Lane& lane : lanes_) {
      const uint64_t sender_floor = floor.Get(lane.sender);
      if (!overflow_.empty()) {
        // Overflow entries below the lane's run come first in id order.
        ReleaseOverflowRange(lane.sender, 0, std::min(sender_floor, lane.first_seq), fn);
      }
      while (!lane.msgs.empty() && lane.first_seq <= sender_floor) {
        const GroupDataPtr msg = std::move(lane.msgs.front());
        lane.msgs.pop_front();
        ++lane.first_seq;
        --count_;
        fn(msg);
      }
      if (!overflow_.empty()) {
        ReleaseOverflowRange(lane.sender, lane.first_seq, sender_floor, fn);
      }
    }
    if (!overflow_.empty()) {
      // Senders that only ever appeared through the overflow path.
      for (auto it = overflow_.begin(); it != overflow_.end();) {
        if (FindLane(it->first.sender) == nullptr && it->first.seq <= floor.Get(it->first.sender)) {
          const GroupDataPtr msg = std::move(it->second);
          it = overflow_.erase(it);
          --count_;
          fn(msg);
        } else {
          ++it;
        }
      }
    }
  }

  GroupDataPtr Find(const MessageId& id) const {
    if (const Lane* lane = FindLane(id.sender)) {
      if (id.seq >= lane->first_seq && id.seq < lane->first_seq + lane->msgs.size()) {
        return lane->msgs[id.seq - lane->first_seq];
      }
    }
    if (!overflow_.empty()) {
      auto it = overflow_.find(id);
      if (it != overflow_.end()) {
        return it->second;
      }
    }
    return nullptr;
  }

  // All retained messages in (sender, seq) order.
  std::vector<GroupDataPtr> CollectAll() const {
    std::vector<GroupDataPtr> out;
    out.reserve(count_);
    auto ov = overflow_.begin();
    for (const Lane& lane : lanes_) {
      for (; ov != overflow_.end() && ov->first < MessageId{lane.sender, lane.first_seq}; ++ov) {
        out.push_back(ov->second);
      }
      out.insert(out.end(), lane.msgs.begin(), lane.msgs.end());
      const MessageId lane_end{lane.sender, lane.first_seq + lane.msgs.size()};
      for (; ov != overflow_.end() && ov->first.sender == lane.sender && ov->first < lane_end;
           ++ov) {
        out.push_back(ov->second);  // unreachable when contiguity held; defensive
      }
    }
    for (; ov != overflow_.end(); ++ov) {
      out.push_back(ov->second);
    }
    // Overflow senders ordered between lanes rather than after them: fall
    // back to one sort; a no-op (already sorted) whenever overflow is empty.
    if (!overflow_.empty()) {
      std::sort(out.begin(), out.end(),
                [](const GroupDataPtr& a, const GroupDataPtr& b) { return a->id() < b->id(); });
    }
    return out;
  }

  // Drops every overflow entry whose sender is absent from `members`
  // (sorted), invoking fn(msg) on each. An evicted sender's floor entry is
  // pinned at 0 forever — MeetMin drops rows for departed members, and a
  // rejoiner returns under a fresh id — so non-contiguous strays from
  // ex-members would otherwise never satisfy a release floor. Lanes need no
  // sweep: contiguous retention is always covered by the flush cut.
  template <typename Fn>
  void PurgeOverflowNotIn(const std::vector<MemberId>& members, Fn&& fn) {
    for (auto it = overflow_.begin(); it != overflow_.end();) {
      if (!std::binary_search(members.begin(), members.end(), it->first.sender)) {
        const GroupDataPtr msg = std::move(it->second);
        it = overflow_.erase(it);
        --count_;
        fn(msg);
      } else {
        ++it;
      }
    }
  }

  size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  struct Lane {
    MemberId sender = 0;
    uint64_t first_seq = 0;  // seq of msgs.front() when non-empty
    std::deque<GroupDataPtr> msgs;
  };

  Lane* FindLane(MemberId sender) {
    auto it = std::lower_bound(lanes_.begin(), lanes_.end(), sender,
                               [](const Lane& l, MemberId m) { return l.sender < m; });
    return it != lanes_.end() && it->sender == sender ? &*it : nullptr;
  }
  const Lane* FindLane(MemberId sender) const {
    return const_cast<RetentionRing*>(this)->FindLane(sender);
  }
  Lane& LaneFor(MemberId sender) {
    auto it = std::lower_bound(lanes_.begin(), lanes_.end(), sender,
                               [](const Lane& l, MemberId m) { return l.sender < m; });
    if (it == lanes_.end() || it->sender != sender) {
      it = lanes_.insert(it, Lane{sender, 0, {}});
    }
    return *it;
  }

  template <typename Fn>
  void ReleaseOverflowRange(MemberId sender, uint64_t from_seq, uint64_t floor, Fn&& fn) {
    auto it = overflow_.lower_bound(MessageId{sender, from_seq});
    while (it != overflow_.end() && it->first.sender == sender && it->first.seq <= floor) {
      const GroupDataPtr msg = std::move(it->second);
      it = overflow_.erase(it);
      --count_;
      fn(msg);
    }
  }

  std::vector<Lane> lanes_;  // sorted by sender
  std::map<MessageId, GroupDataPtr> overflow_;
  size_t count_ = 0;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_RETENTION_RING_H_
