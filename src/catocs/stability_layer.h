// Stability / atomic-delivery layer: owns the retention-buffer strategy
// (causal_buffer.h), stamps ack vectors onto outgoing data, consumes ack
// vectors from data and gossip, and runs the periodic ack-gossip timer.
// Pruning is throttled on the per-message path (the full-vector strategy
// walks the whole buffer and the member matrix); the periodic gossip path
// prunes unconditionally so buffers always drain at quiescence.

#ifndef REPRO_SRC_CATOCS_STABILITY_LAYER_H_
#define REPRO_SRC_CATOCS_STABILITY_LAYER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/catocs/causal_buffer.h"
#include "src/catocs/layer.h"

namespace catocs {

class OverlayCausalStrategy;

class StabilityLayer : public OrderingLayer {
 public:
  explicit StabilityLayer(GroupCore* core);

  const char* name() const override { return "stability"; }

  void OnStart() override;
  void OnStop() override;
  // Stamps the piggybacked ack vector and, under the footnote-4 variant, the
  // unstable causal predecessors.
  void OnSend(GroupData& data) override;
  bool OnReceive(MemberId src, uint32_t port, const net::PayloadPtr& payload) override;
  // New member set: re-anchor the stability minimum and prune.
  void OnViewChange(const View& view) override;

  // A message passed the causal gate: retain it (stripped of piggyback),
  // record our own delivery, and feed the strategy's evidence channel.
  void OnCausalDeliver(const GroupDataPtr& data);

  // An explicit ack vector arrived (piggybacked on data or gossiped).
  void ObserveAckVector(MemberId member, const VectorClock& vec);

  void Prune() { strategy_->Prune(); }
  std::vector<GroupDataPtr> UnstableMessages() const { return strategy_->UnstableMessages(); }

  const CausalBufferStrategy& strategy() const { return *strategy_; }
  size_t buffered_messages() const { return strategy_->buffered_count(); }
  size_t buffered_bytes() const { return strategy_->buffered_bytes(); }
  size_t peak_buffered_messages() const { return strategy_->peak_buffered_count(); }
  size_t peak_buffered_bytes() const { return strategy_->peak_buffered_bytes(); }

 private:
  void MaybePrune();
  void GossipAcks();
  // Overlay replacement for flat ack gossip: up-report the subtree floor to
  // the overlay parent, or (at the root) adopt it and flood the announcement
  // down. O(degree) frames per member per round instead of O(N).
  void GossipOverlayFloor();
  void OnStabilityFloor(MemberId src, const StabilityFloor& frame);
  // Observability: a buffered copy became stable and left the strategy.
  // `cause` names the release mechanism ("prune", "floor", "floor-sweep") —
  // it rides into the span note and the retention-hold provenance.
  void OnBufferRelease(const GroupDataPtr& msg, const char* cause);

  std::unique_ptr<CausalBufferStrategy> strategy_;
  // Downcast view of strategy_ when the group runs the overlay path; null
  // otherwise, so non-overlay code never even branches past the pointer.
  OverlayCausalStrategy* overlay_strategy_ = nullptr;
  sim::TimePoint last_prune_ = sim::TimePoint::Zero();
  std::unique_ptr<sim::PeriodicTimer> gossip_timer_;
  // When each retained copy entered the buffer; maintained only under
  // observability (empty otherwise).
  std::map<MessageId, sim::TimePoint> buffered_since_;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_STABILITY_LAYER_H_
