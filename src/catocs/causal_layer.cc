#include "src/catocs/causal_layer.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/catocs/fifo_layer.h"
#include "src/catocs/stability_layer.h"
#include "src/catocs/total_order_layer.h"
#include "src/catocs/wire_codec.h"

namespace catocs {

void CausalLayer::OnSend(GroupData& data) {
  VectorClock vt = vd_;
  vt.Set(core_->self, data.id().seq);
  if (core_->overlay_mode()) {
    // Constant-metadata wire form: the frame carries only the sender's view
    // id (kOverlayHeaderBytes); causal order comes from FIFO tree links, not
    // from shipping a clock, so delta encoding is moot here. The clock is
    // still stamped below as internal bookkeeping — it backs the delivery
    // gate and the invariant oracles but is never charged on the wire.
    data.set_overlay_view(core_->view.id);
    data.set_vt(std::move(vt));
    core_->RecordSpan(data.id(), sim::SpanEvent::kStamp, name());
    return;
  }
  if (core_->config.delta_timestamps) {
    // Wire form: only the entries changed since our previous frame (full
    // clock on keyframes). The receiver reconstructs against its per-sender
    // reference; see DecodeDeltaFrame.
    WireVt wire = EncodeVtDelta(encoder_valid_ ? &encoder_prev_ : nullptr, vt);
    const size_t fanout = core_->view.members.size() - 1;
    core_->stats.delta_header_bytes_saved += (vt.SizeBytes() - wire.SizeBytes() + 1) * fanout;
    if (wire.keyframe) {
      ++core_->stats.delta_keyframes_sent;
    } else {
      ++core_->stats.delta_frames_sent;
    }
    data.set_wire_vt(std::move(wire));
    encoder_prev_ = vt;
    encoder_valid_ = true;
  }
  data.set_vt(std::move(vt));
  core_->RecordSpan(data.id(), sim::SpanEvent::kStamp, name());
}

bool CausalLayer::OnReceive(MemberId src, uint32_t port, const net::PayloadPtr& payload) {
  if (port != GroupPorts::Data(core_->config.group_id)) {
    return false;
  }
  // Batched frame: unpack and ingest the constituents in their send order
  // (the batch-aware delivery gate — each constituent keeps its own
  // identity, timestamp, and delivery obligations).
  if (const auto* batch = net::PayloadCast<GroupBatch>(payload)) {
    if (batch->group() != core_->config.group_id) {
      return true;
    }
    const GroupDataPtr& last = batch->entries().back();
    for (const GroupDataPtr& entry : batch->entries()) {
      for (const auto& predecessor : entry->piggyback()) {
        Ingest(predecessor);
      }
      if (entry->wire_vt() != nullptr) {
        DecodeDeltaFrame(*entry);
      }
      // One ack observation per frame, not per constituent: acks are
      // monotone along the sender's stream, so the last vector subsumes the
      // 31 merges the per-constituent path would have done.
      Ingest(entry, /*observe_acks=*/entry == last);
    }
    return true;
  }
  const auto* data = net::PayloadCast<GroupData>(payload);
  assert(data != nullptr);
  if (data->group() != core_->config.group_id) {
    return true;
  }
  auto shared = std::static_pointer_cast<const GroupData>(payload);
  // Piggybacked predecessors are ingested first so this message's causal
  // condition can be met immediately.
  for (const auto& predecessor : shared->piggyback()) {
    Ingest(predecessor);
  }
  if (shared->wire_vt() != nullptr) {
    DecodeDeltaFrame(*shared);
  }
  Ingest(shared, /*observe_acks=*/true, src);
  return true;
}

void CausalLayer::DecodeDeltaFrame(const GroupData& data) {
  const WireVt& wire = *data.wire_vt();
  const MemberId sender = data.id().sender;
  auto it = std::lower_bound(delta_refs_.begin(), delta_refs_.end(), sender,
                             [](const auto& entry, MemberId m) { return entry.first < m; });
  const bool present = it != delta_refs_.end() && it->first == sender;
  if (wire.keyframe) {
    // A keyframe (re)establishes the reference unconditionally — including
    // a sender we have never heard from, e.g. one that rejoined under a
    // fresh id after a crash.
    DeltaRef ref{DecodeVtDelta(VectorClock{}, wire), data.id().seq};
    if (ref.clock != data.vt()) {
      ++core_->stats.delta_decode_mismatches;
    }
    if (present) {
      it->second = std::move(ref);
    } else {
      delta_refs_.emplace(it, sender, std::move(ref));
    }
    return;
  }
  // Delta frames advance the reference strictly frame-by-frame. The
  // transport's per-peer FIFO channel delivers them in encode order; a
  // frame reaching us out of band (flush redistribution) is simply not
  // decoded — its full clock travels with it regardless.
  if (!present || it->second.seq + 1 != data.id().seq) {
    return;
  }
  ApplyVtDelta(it->second.clock, wire);
  it->second.seq = data.id().seq;
  if (it->second.clock != data.vt()) {
    ++core_->stats.delta_decode_mismatches;
  }
}

void CausalLayer::OnViewChange(const View& view) {
  if (core_->config.delta_timestamps) {
    // Resynchronize the codec across the membership change: our next frame
    // is a keyframe, and stale references must not decode post-view deltas.
    encoder_valid_ = false;
    delta_refs_.clear();
  }
  if (!pre_view_.empty()) {
    // The stashed frames' view just installed here (the membership layer
    // already ingested the redistribution, so any causal gap between the
    // views is closed). Re-ingest in arrival order with their original
    // arrival links, so delivery re-forwards them down the *new* tree.
    std::deque<PendingMessage> stash = std::move(pre_view_);
    pre_view_.clear();
    for (PendingMessage& held : stash) {
      if (held.data->overlay_view() > view.id) {
        pre_view_.push_back(std::move(held));  // still ahead; keep waiting
      } else {
        Ingest(held.data, /*observe_acks=*/false, held.from);
      }
    }
  }
}

void CausalLayer::Ingest(const GroupDataPtr& data, bool observe_acks, MemberId from) {
  // Stability info rides on every data message.
  if (observe_acks && !data->acks().empty()) {
    core_->stability->ObserveAckVector(data->id().sender, data->acks());
  }

  if (data->mode() == OrderingMode::kUnordered) {
    core_->fifo->DeliverDirect(data);
    return;
  }

  // Overlay view gating (buffering-during-churn, DESIGN.md §11). Applied to
  // frames off a link (from != 0), never to the view-install redistribution.
  if (data->is_overlay() && from != 0 && data->overlay_view() != core_->view.id) {
    if (data->overlay_view() > core_->view.id) {
      // Sent under a view we have not installed yet: hold it until the
      // install (and its redistribution) arrives, then re-ingest.
      ++core_->stats.overlay_prebuffered;
      pre_view_.push_back(PendingMessage{data, core_->simulator->now(), from});
    } else {
      // Sent under a view we have already left. View synchrony makes this a
      // provable duplicate-or-loss: if any survivor of that view delivered
      // it, it reached us in the flush cut's redistribution (and dedups
      // below); if none did, its sender failed and the message is gone
      // beyond the cut — the same non-durability the direct path admits in
      // DropFailedSenderBacklog.
      ++core_->stats.overlay_stale_dropped;
    }
    return;
  }

  // Duplicate suppression: already causally delivered, or already pending.
  if (data->id().seq <= vd_.Get(data->id().sender)) {
    return;
  }

  // Fast path: nothing queued and the causal condition already holds — the
  // overwhelmingly common case under sustained in-order traffic (every
  // batch constituent after the first lands here too). Skips the pending
  // round trip entirely: no dedup-set insert/erase, no deque churn, no
  // post-delivery rescan (the queue is empty, so nothing can unblock).
  if (pending_.empty() && CausallyDeliverable(*data)) {
    if (core_->observing()) {
      core_->pipeline_stats.RecordEnter(HoldReason::kCausalGap);
      core_->RecordSpan(data->id(), sim::SpanEvent::kEnter, name(), "");
    }
    CausalDeliver(data, core_->simulator->now(), from);
    return;
  }

  if (!pending_ids_.insert(data->id()).second) {
    return;
  }
  if (core_->observing()) {
    core_->pipeline_stats.RecordEnter(HoldReason::kCausalGap);
    core_->RecordSpan(data->id(), sim::SpanEvent::kEnter, name(),
                      CausallyDeliverable(*data) ? "" : ToString(HoldReason::kCausalGap));
  }
  pending_.push_back(PendingMessage{data, core_->simulator->now(), from});
  TryDeliverPending();
}

bool CausalLayer::CausallyDeliverable(const GroupData& data) const {
  // Delta-stamped frames answer the gate in O(changed entries) rather than
  // O(N) — see CausallyDeliverableDelta for why skipping unchanged entries
  // is exact.
  const WireVt* wire = data.wire_vt();
  if (wire != nullptr && !wire->keyframe) {
    ++core_->stats.delta_fast_path_hits;
    return CausallyDeliverableDelta(*wire, data.id().sender, data.id().seq, vd_);
  }
  return catocs::CausallyDeliverable(data.vt(), data.id().sender, vd_);
}

void CausalLayer::TryDeliverPending() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (CausallyDeliverable(*it->data)) {
        PendingMessage pending = std::move(*it);
        pending_.erase(it);
        pending_ids_.erase(pending.data->id());
        CausalDeliver(pending.data, pending.arrived_at, pending.from);
        progress = true;
        break;  // iterators invalidated; rescan
      }
    }
  }
}

void CausalLayer::CausalDeliver(const GroupDataPtr& data, sim::TimePoint arrived_at,
                                MemberId from) {
  const MemberId sender = data->id().sender;
  assert(vd_.Get(sender) + 1 == data->id().seq);
  vd_.Set(sender, data->id().seq);
  ++core_->stats.causal_delivered;

  // Overlay dissemination happens here, not at OnSend: forwarding *in causal
  // delivery order* over per-link FIFO channels is what lets receivers order
  // frames without any clock on the wire. from == 0 (redistribution) frames
  // are not re-forwarded — the coordinator served every survivor directly.
  if (data->is_overlay() && from != 0 && core_->overlay_mode()) {
    ForwardOnOverlay(data, from);
  }

  const sim::Duration causal_delay = core_->simulator->now() - arrived_at;
  if (causal_delay > sim::Duration::Zero()) {
    ++core_->stats.delayed_deliveries;
    core_->stats.total_causal_delay += causal_delay;
  }
  if (core_->observing()) {
    core_->pipeline_stats.RecordRelease(HoldReason::kCausalGap, causal_delay);
    core_->RecordSpan(data->id(), sim::SpanEvent::kDeliver, name());
    if (obs::ProvenanceRecorder* recorder = core_->provenance()) {
      // Stage-1 arrival first, then the hold: a later message's causal wait
      // that this delivery unblocks classifies against this arrival time.
      recorder->RecordCausalDelivery(SpanKey(data->id()), core_->self, core_->simulator->now());
    }
    core_->RecordHoldProvenance(data->id(), name(), arrived_at);
  }

  // Protocol order, preserved from the monolith: retain for atomic delivery,
  // note our own progress, give the total-order layer its sequencing shot,
  // then hand the message to the app-side FIFO gate.
  core_->stability->OnCausalDeliver(data);
  core_->total->OnCausalDeliver(*data);
  core_->fifo->Enqueue(data, causal_delay);
}

void CausalLayer::ForwardOnOverlay(const GroupDataPtr& data, MemberId from) {
  const uint32_t port = GroupPorts::Data(core_->config.group_id);
  size_t links = 0;
  for (MemberId neighbor : core_->overlay.neighbors()) {
    if (neighbor == from) {
      continue;  // never echo a frame back up its arrival link
    }
    core_->transport->SendReliable(neighbor, port, data);
    ++links;
  }
  if (links > 0) {
    // Header accounting lives at the transmission site: a tree crosses each
    // edge once, so summing links across members matches the direct path's
    // per-send (N−1) charge — same totals, constant per-transmission cost.
    core_->stats.overlay_forwards += links;
    core_->stats.data_transmissions += links;
    core_->stats.ordering_header_bytes += data->HeaderBytes() * links;
  }
}

void CausalLayer::DropFailedSenderBacklog(const ViewInstall& install) {
  for (const auto& [sender, cut] : install.final_cut().entries()) {
    if (std::find(install.members().begin(), install.members().end(), sender) !=
        install.members().end()) {
      continue;  // live senders have reliable FIFO channels; no gaps
    }
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->data->id().sender == sender && it->data->id().seq > cut) {
        ++core_->stats.messages_dropped_at_view_change;
        if (core_->observing()) {
          core_->pipeline_stats.RecordRelease(HoldReason::kCausalGap,
                                              core_->simulator->now() - it->arrived_at);
          core_->RecordSpan(it->data->id(), sim::SpanEvent::kDrop, name(),
                            "failed-sender-backlog");
        }
        pending_ids_.erase(it->data->id());
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace catocs
