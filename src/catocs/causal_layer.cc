#include "src/catocs/causal_layer.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/catocs/fifo_layer.h"
#include "src/catocs/stability_layer.h"
#include "src/catocs/total_order_layer.h"

namespace catocs {

void CausalLayer::OnSend(GroupData& data) {
  VectorClock vt = vd_;
  vt.Set(core_->self, data.id().seq);
  data.set_vt(std::move(vt));
  core_->RecordSpan(data.id(), sim::SpanEvent::kStamp, name());
}

bool CausalLayer::OnReceive(MemberId /*src*/, uint32_t port, const net::PayloadPtr& payload) {
  if (port != GroupPorts::Data(core_->config.group_id)) {
    return false;
  }
  const auto* data = net::PayloadCast<GroupData>(payload);
  assert(data != nullptr);
  if (data->group() != core_->config.group_id) {
    return true;
  }
  auto shared = std::static_pointer_cast<const GroupData>(payload);
  // Piggybacked predecessors are ingested first so this message's causal
  // condition can be met immediately.
  for (const auto& predecessor : shared->piggyback()) {
    Ingest(predecessor);
  }
  Ingest(shared);
  return true;
}

void CausalLayer::Ingest(const GroupDataPtr& data) {
  // Stability info rides on every data message.
  if (!data->acks().empty()) {
    core_->stability->ObserveAckVector(data->id().sender, data->acks());
  }

  if (data->mode() == OrderingMode::kUnordered) {
    core_->fifo->DeliverDirect(data);
    return;
  }

  // Duplicate suppression: already causally delivered, or already pending.
  if (data->id().seq <= vd_.Get(data->id().sender)) {
    return;
  }
  if (!pending_ids_.insert(data->id()).second) {
    return;
  }
  if (core_->observing()) {
    core_->pipeline_stats.RecordEnter(HoldReason::kCausalGap);
    core_->RecordSpan(data->id(), sim::SpanEvent::kEnter, name(),
                      CausallyDeliverable(*data) ? "" : ToString(HoldReason::kCausalGap));
  }
  pending_.push_back(PendingMessage{data, core_->simulator->now()});
  TryDeliverPending();
}

bool CausalLayer::CausallyDeliverable(const GroupData& data) const {
  return catocs::CausallyDeliverable(data.vt(), data.id().sender, vd_);
}

void CausalLayer::TryDeliverPending() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (CausallyDeliverable(*it->data)) {
        PendingMessage pending = std::move(*it);
        pending_.erase(it);
        pending_ids_.erase(pending.data->id());
        CausalDeliver(pending);
        progress = true;
        break;  // iterators invalidated; rescan
      }
    }
  }
}

void CausalLayer::CausalDeliver(const PendingMessage& pending) {
  const GroupDataPtr& data = pending.data;
  const MemberId sender = data->id().sender;
  assert(vd_.Get(sender) + 1 == data->id().seq);
  vd_.Set(sender, data->id().seq);
  ++core_->stats.causal_delivered;

  const sim::Duration causal_delay = core_->simulator->now() - pending.arrived_at;
  if (causal_delay > sim::Duration::Zero()) {
    ++core_->stats.delayed_deliveries;
    core_->stats.total_causal_delay += causal_delay;
  }
  if (core_->observing()) {
    core_->pipeline_stats.RecordRelease(HoldReason::kCausalGap, causal_delay);
    core_->RecordSpan(data->id(), sim::SpanEvent::kDeliver, name());
  }

  // Protocol order, preserved from the monolith: retain for atomic delivery,
  // note our own progress, give the total-order layer its sequencing shot,
  // then hand the message to the app-side FIFO gate.
  core_->stability->OnCausalDeliver(data);
  core_->total->OnCausalDeliver(*data);
  core_->fifo->Enqueue(data, causal_delay);
}

void CausalLayer::DropFailedSenderBacklog(const ViewInstall& install) {
  for (const auto& [sender, cut] : install.final_cut().entries()) {
    if (std::find(install.members().begin(), install.members().end(), sender) !=
        install.members().end()) {
      continue;  // live senders have reliable FIFO channels; no gaps
    }
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->data->id().sender == sender && it->data->id().seq > cut) {
        ++core_->stats.messages_dropped_at_view_change;
        if (core_->observing()) {
          core_->pipeline_stats.RecordRelease(HoldReason::kCausalGap,
                                              core_->simulator->now() - it->arrived_at);
          core_->RecordSpan(it->data->id(), sim::SpanEvent::kDrop, name(),
                            "failed-sender-backlog");
        }
        pending_ids_.erase(it->data->id());
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace catocs
