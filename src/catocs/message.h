// Wire-level message types exchanged by the CATOCS protocol machines:
// application data with vector timestamps, total-order assignments from the
// sequencer/token holder, stability (ack-vector) gossip, and membership /
// flush control traffic. Each type reports honest header sizes so the
// benches can account for CATOCS's per-message ordering overhead (§3.4, E12).

#ifndef REPRO_SRC_CATOCS_MESSAGE_H_
#define REPRO_SRC_CATOCS_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/catocs/vector_clock.h"
#include "src/net/payload.h"
#include "src/sim/time.h"

namespace catocs {

using GroupId = uint32_t;

// How a message asked to be delivered.
enum class OrderingMode {
  kUnordered,  // plain multicast; no delivery constraint
  kCausal,     // happens-before preserving (cbcast)
  kTotal,      // single total order, consistent with causality (abcast)
};

const char* ToString(OrderingMode mode);

// A group message is identified by (original sender, per-sender sequence).
struct MessageId {
  MemberId sender = 0;
  uint64_t seq = 0;

  bool operator==(const MessageId&) const = default;
  auto operator<=>(const MessageId&) const = default;
  std::string ToString() const;
};

// Delta-encoded vector timestamp as it would travel on the wire: only the
// entries that changed since the sender's previous frame, plus a flag byte.
// A keyframe carries the full clock and resets the receiver's per-sender
// reference (first frame from a sender, and the first frame after a view
// change). Decoding is wire_codec.h's job; the struct lives here because
// GroupData carries it.
struct WireVt {
  bool keyframe = false;
  VectorClock::Entries entries;  // changed (member, value) pairs, sorted

  // Flag byte + one (member id, counter) pair per carried entry.
  size_t SizeBytes() const { return 1 + entries.size() * VectorClock::kEntryBytes; }
};

// Application data wrapped with CATOCS ordering metadata.
class GroupData : public net::Payload {
 public:
  GroupData(GroupId group, MessageId id, OrderingMode mode, VectorClock vt,
            net::PayloadPtr app_payload, sim::TimePoint sent_at)
      : group_(group),
        id_(id),
        mode_(mode),
        vt_(std::move(vt)),
        app_payload_(std::move(app_payload)),
        sent_at_(sent_at) {}

  size_t SizeBytes() const override;
  std::string Describe() const override;

  // Per-layer header breakdown: the base frame (id + mode), the causal
  // layer's vector timestamp, the stability layer's piggybacked ack vector.
  std::vector<net::HeaderSection> HeaderSections() const override;

  // Ordering metadata charged as header bytes: the sum of HeaderSections().
  size_t HeaderBytes() const;
  // Just the causal section: overlay header, wire delta, or full clock.
  size_t CausalHeaderBytes() const;

  GroupId group() const { return group_; }
  const MessageId& id() const { return id_; }
  OrderingMode mode() const { return mode_; }
  const VectorClock& vt() const { return vt_; }
  const net::PayloadPtr& app_payload() const { return app_payload_; }
  sim::TimePoint sent_at() const { return sent_at_; }

  // Vector timestamp, stamped by the causal layer before first transmission
  // (the facade constructs ordered messages with an empty clock and runs the
  // pipeline's OnSend chain over them).
  void set_vt(VectorClock vt) { vt_ = std::move(vt); }

  // Ack vector (the sender's delivered-vector) piggybacked for stability
  // tracking. Set once before first transmission.
  void set_acks(VectorClock acks) { acks_ = std::move(acks); }
  const VectorClock& acks() const { return acks_; }

  // Footnote-4 variant: copies of causally preceding messages carried along
  // instead of delaying at the receiver.
  void set_piggyback(std::vector<std::shared_ptr<const GroupData>> msgs) {
    piggyback_ = std::move(msgs);
  }
  const std::vector<std::shared_ptr<const GroupData>>& piggyback() const { return piggyback_; }

  // Delta-encoded wire form of the vector timestamp (GroupConfig::
  // delta_timestamps). When set, the causal header is charged at the delta's
  // size instead of the full clock's, and receivers reconstruct the full
  // clock against their per-sender reference (causal_layer.cc). Null in the
  // default configuration.
  void set_wire_vt(WireVt wire) { wire_vt_.emplace(std::move(wire)); }
  const WireVt* wire_vt() const { return wire_vt_.has_value() ? &*wire_vt_ : nullptr; }

  // Overlay dissemination (CausalBufferKind::kOverlay): the frame travels
  // over the spanning overlay and its causal header is the constant-size
  // overlay form — the view id the sender stamped it in — instead of any
  // clock (wire_codec.h's kOverlayHeaderBytes). View ids start at 1, so 0
  // doubles as "not an overlay frame". The internal vt_ is still stamped for
  // the invariant oracles but is never charged or consulted on the wire.
  void set_overlay_view(uint64_t view_id) { overlay_view_ = view_id; }
  bool is_overlay() const { return overlay_view_ != 0; }
  uint64_t overlay_view() const { return overlay_view_; }

 private:
  GroupId group_;
  MessageId id_;
  OrderingMode mode_;
  VectorClock vt_;
  net::PayloadPtr app_payload_;
  sim::TimePoint sent_at_;
  VectorClock acks_;
  std::vector<std::shared_ptr<const GroupData>> piggyback_;
  std::optional<WireVt> wire_vt_;
  uint64_t overlay_view_ = 0;  // 0 = not an overlay frame
};

using GroupDataPtr = std::shared_ptr<const GroupData>;

// A copy of `data` without its piggybacked predecessors (shares the app
// payload). Buffered/retransmitted copies must be stripped: retaining the
// piggyback lists would chain buffered messages into an ever-deepening
// structure.
GroupDataPtr StripPiggyback(const GroupDataPtr& data);

// Sender-side batch frame: several consecutive ordered sends from one
// sender coalesced into a single stamped multicast frame
// (GroupConfig::batching > 1). Constituents keep their individual identity,
// timestamps, and delivery obligations — the receiver unpacks and ingests
// them in order — but the wire pays one base frame plus delta-encoded
// per-entry metadata instead of a full header per message. Constituent
// sequence numbers are contiguous starting at first_seq(): only the
// sender's own ordered sends enter its batcher, in send order.
class GroupBatch : public net::Payload {
 public:
  GroupBatch(GroupId group, std::vector<GroupDataPtr> entries);

  // Sum of the constituents' payload sizes (their ordering headers are
  // accounted as header bytes, mirroring GroupData).
  size_t SizeBytes() const override;
  std::string Describe() const override;
  std::vector<net::HeaderSection> HeaderSections() const override;

  // Base frame: group(4) + sender(4) + first_seq(8) + count(2). Per entry:
  // mode(1) + payload_len(4) + vt delta (1 + 12 per changed entry) + ack
  // delta (1 + 12 per changed entry), each delta taken against the previous
  // constituent (the first against empty, i.e. full). Precomputed once at
  // construction; the value is pinned by message_test.
  size_t HeaderBytes() const { return header_bytes_; }
  static constexpr size_t kBaseFrameBytes = 18;

  GroupId group() const { return group_; }
  MemberId sender() const { return entries_.front()->id().sender; }
  uint64_t first_seq() const { return entries_.front()->id().seq; }
  const std::vector<GroupDataPtr>& entries() const { return entries_; }

 private:
  GroupId group_;
  std::vector<GroupDataPtr> entries_;  // non-empty, contiguous seqs
  size_t header_bytes_ = 0;
};

using GroupBatchPtr = std::shared_ptr<const GroupBatch>;

// Total-order assignments from the sequencer (or token holder): a batch of
// (message id -> global sequence number).
class OrderAssignment : public net::Payload {
 public:
  OrderAssignment(GroupId group, std::vector<std::pair<MessageId, uint64_t>> assignments)
      : group_(group), assignments_(std::move(assignments)) {}

  size_t SizeBytes() const override { return assignments_.size() * 20; }
  std::string Describe() const override { return "order"; }

  GroupId group() const { return group_; }
  const std::vector<std::pair<MessageId, uint64_t>>& assignments() const { return assignments_; }

 private:
  GroupId group_;
  std::vector<std::pair<MessageId, uint64_t>> assignments_;
};

// Standalone stability gossip: the sender's delivered-vector.
class AckVector : public net::Payload {
 public:
  AckVector(GroupId group, VectorClock delivered)
      : group_(group), delivered_(std::move(delivered)) {}

  size_t SizeBytes() const override { return delivered_.SizeBytes(); }
  std::string Describe() const override { return "ackvec"; }

  GroupId group() const { return group_; }
  const VectorClock& delivered() const { return delivered_; }

 private:
  GroupId group_;
  VectorClock delivered_;
};

// Tree-aggregated stability traffic for the overlay path (DESIGN.md §11).
// Two directions share the frame: an up-report carries the minimum of the
// sender's own delivered-vector and its children's last up-reports (its
// subtree's delivery floor), sent to its overlay parent; an announcement is
// the root's global minimum flooded down the tree, which every member adopts
// as its release floor. Per gossip round each member sends O(1) of these
// (degree ≤ arity+1), vs. the N ack-vectors of flat gossip.
// Every frame is tagged with the sender's view id: subtree floors are only
// meaningful against the tree both ends computed from the same view, so
// receivers drop mismatches and aggregation restarts from same-view evidence
// after every rewire (overlay_buffer.h).
class StabilityFloor : public net::Payload {
 public:
  StabilityFloor(GroupId group, uint64_t view_id, bool announce, VectorClock floor)
      : group_(group), view_id_(view_id), announce_(announce), floor_(std::move(floor)) {}

  // view id(8) + direction flag(1) + the carried clock.
  size_t SizeBytes() const override { return 9 + floor_.SizeBytes(); }
  std::string Describe() const override { return announce_ ? "floor-announce" : "floor-up"; }

  GroupId group() const { return group_; }
  uint64_t view_id() const { return view_id_; }
  bool announce() const { return announce_; }
  const VectorClock& floor() const { return floor_; }

 private:
  GroupId group_;
  uint64_t view_id_;
  bool announce_;
  VectorClock floor_;
};

// Token for the rotating-sequencer total-order variant. Carries a bounded
// window of recent assignments so the next holder cannot double-assign a
// message whose OrderAssignment broadcast is still in flight — and ordering
// respects causality: each holder sequences every unassigned message it has
// causally delivered, in its local (causal) delivery order.
class OrderToken : public net::Payload {
 public:
  // Assignments arrive sorted by MessageId (the token holder's window is
  // flattened and sorted once per rotation) — the token is re-serialized on
  // every pass, so the window rides as a flat vector rather than a
  // node-per-entry map.
  OrderToken(GroupId group, uint64_t next_total_seq,
             std::vector<std::pair<MessageId, uint64_t>> assignments)
      : group_(group), next_total_seq_(next_total_seq), assignments_(std::move(assignments)) {}

  size_t SizeBytes() const override { return 12 + assignments_.size() * 20; }
  std::string Describe() const override { return "token"; }

  GroupId group() const { return group_; }
  uint64_t next_total_seq() const { return next_total_seq_; }
  const std::vector<std::pair<MessageId, uint64_t>>& assignments() const { return assignments_; }

 private:
  GroupId group_;
  uint64_t next_total_seq_;
  std::vector<std::pair<MessageId, uint64_t>> assignments_;  // sorted by id
};

// --- Membership / flush control -------------------------------------------

class Heartbeat : public net::Payload {
 public:
  Heartbeat(GroupId group, uint64_t view_id) : group_(group), view_id_(view_id) {}
  size_t SizeBytes() const override { return 12; }
  std::string Describe() const override { return "heartbeat"; }
  GroupId group() const { return group_; }
  uint64_t view_id() const { return view_id_; }

 private:
  GroupId group_;
  uint64_t view_id_;
};

// A new process asks to be added to the group; routed to the coordinator,
// which folds the join into a flush so the new view installs consistently.
class JoinRequest : public net::Payload {
 public:
  JoinRequest(GroupId group, MemberId joiner) : group_(group), joiner_(joiner) {}
  size_t SizeBytes() const override { return 8; }
  std::string Describe() const override { return "join-request"; }
  GroupId group() const { return group_; }
  MemberId joiner() const { return joiner_; }

 private:
  GroupId group_;
  MemberId joiner_;
};

class SuspectNotice : public net::Payload {
 public:
  SuspectNotice(GroupId group, MemberId suspect) : group_(group), suspect_(suspect) {}
  size_t SizeBytes() const override { return 8; }
  std::string Describe() const override { return "suspect"; }
  GroupId group() const { return group_; }
  MemberId suspect() const { return suspect_; }

 private:
  GroupId group_;
  MemberId suspect_;
};

class FlushRequest : public net::Payload {
 public:
  FlushRequest(GroupId group, uint64_t new_view_id, std::vector<MemberId> survivors)
      : group_(group), new_view_id_(new_view_id), survivors_(std::move(survivors)) {}
  size_t SizeBytes() const override { return 12 + survivors_.size() * 4; }
  std::string Describe() const override { return "flush-req"; }
  GroupId group() const { return group_; }
  uint64_t new_view_id() const { return new_view_id_; }
  const std::vector<MemberId>& survivors() const { return survivors_; }

 private:
  GroupId group_;
  uint64_t new_view_id_;
  std::vector<MemberId> survivors_;
};

// A member's flush contribution: its delivered-vector plus copies of every
// message it holds that is not yet known stable. The coordinator uses these
// to bring all survivors to a common delivery cut.
class FlushState : public net::Payload {
 public:
  FlushState(GroupId group, uint64_t new_view_id, VectorClock delivered,
             std::vector<GroupDataPtr> unstable,
             std::vector<std::pair<MessageId, uint64_t>> known_assignments,
             uint64_t next_total_deliver)
      : group_(group),
        new_view_id_(new_view_id),
        delivered_(std::move(delivered)),
        unstable_(std::move(unstable)),
        known_assignments_(std::move(known_assignments)),
        next_total_deliver_(next_total_deliver) {}

  size_t SizeBytes() const override;
  std::string Describe() const override { return "flush-state"; }

  GroupId group() const { return group_; }
  uint64_t new_view_id() const { return new_view_id_; }
  const VectorClock& delivered() const { return delivered_; }
  const std::vector<GroupDataPtr>& unstable() const { return unstable_; }
  const std::vector<std::pair<MessageId, uint64_t>>& known_assignments() const {
    return known_assignments_;
  }
  uint64_t next_total_deliver() const { return next_total_deliver_; }

 private:
  GroupId group_;
  uint64_t new_view_id_;
  VectorClock delivered_;
  std::vector<GroupDataPtr> unstable_;
  std::vector<std::pair<MessageId, uint64_t>> known_assignments_;
  uint64_t next_total_deliver_;
};

// Installs the new view; carries any messages a given survivor was missing.
// A joiner's install may additionally carry an application-state snapshot
// from a live member plus the total-order delivery counter the snapshot
// corresponds to (state transfer for crash-recovery rejoin).
class ViewInstall : public net::Payload {
 public:
  ViewInstall(GroupId group, uint64_t view_id, std::vector<MemberId> members,
              std::vector<GroupDataPtr> missing,
              std::vector<std::pair<MessageId, uint64_t>> assignments, uint64_t next_total_seq,
              VectorClock final_cut, uint64_t next_total_deliver = 0,
              net::PayloadPtr app_state = nullptr)
      : group_(group),
        view_id_(view_id),
        members_(std::move(members)),
        missing_(std::move(missing)),
        assignments_(std::move(assignments)),
        next_total_seq_(next_total_seq),
        final_cut_(std::move(final_cut)),
        next_total_deliver_(next_total_deliver),
        app_state_(std::move(app_state)) {}

  size_t SizeBytes() const override;
  std::string Describe() const override { return "view-install"; }

  GroupId group() const { return group_; }
  uint64_t view_id() const { return view_id_; }
  const std::vector<MemberId>& members() const { return members_; }
  const std::vector<GroupDataPtr>& missing() const { return missing_; }
  // Consolidated total-order assignments surviving the view change and the
  // sequence number at which the new view's sequencer continues.
  const std::vector<std::pair<MessageId, uint64_t>>& assignments() const { return assignments_; }
  uint64_t next_total_seq() const { return next_total_seq_; }
  // The common delivery cut: per sender, the count every survivor must reach.
  // Messages from *failed* senders beyond this cut are lost — delivery was
  // atomic but not durable (§2).
  const VectorClock& final_cut() const { return final_cut_; }
  // Total-order delivery counter matching final_cut on a joiner's install
  // (0 = unset; fall back to next_total_seq, the pre-state-transfer rule).
  uint64_t next_total_deliver() const {
    return next_total_deliver_ != 0 ? next_total_deliver_ : next_total_seq_;
  }
  // Application snapshot for a joiner; null on survivor installs or when no
  // state provider is configured.
  const net::PayloadPtr& app_state() const { return app_state_; }

 private:
  GroupId group_;
  uint64_t view_id_;
  std::vector<MemberId> members_;
  std::vector<GroupDataPtr> missing_;
  std::vector<std::pair<MessageId, uint64_t>> assignments_;
  uint64_t next_total_seq_;
  VectorClock final_cut_;
  uint64_t next_total_deliver_ = 0;
  net::PayloadPtr app_state_;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_MESSAGE_H_
