#include "src/catocs/flow_control.h"

#include "src/catocs/causal_layer.h"
#include "src/catocs/membership_layer.h"
#include "src/catocs/stability_layer.h"

namespace catocs {

FlowController::FlowController(GroupCore* core) : core_(core) {
  core_->flow = this;
  retry_timer_ = std::make_unique<sim::PeriodicTimer>(
      core_->simulator, core_->config.flow_retry_interval, [this] { RetryTick(); });
}

FlowController::~FlowController() = default;

bool FlowController::Admissible() const {
  const GroupConfig& config = core_->config;
  if (config.send_window > 0) {
    const uint64_t sent = core_->causal->send_seq();
    const uint64_t floor = core_->stability->strategy().StableFloorFor(core_->self);
    if (sent - floor >= config.send_window) {
      return false;
    }
  }
  return !(core_->budget.bounded() && core_->budget.pressure() == MemoryPressure::kCritical);
}

SendStatus FlowController::Admit() {
  core_->SyncTransportBudget();
  if (Admissible()) {
    return SendStatus::kSent;
  }
  if (core_->config.overload_policy == OverloadPolicy::kShedNew) {
    ++core_->stats.sends_shed;
    return SendStatus::kShed;
  }
  ++core_->stats.sends_backpressured;
  if (!waiting_) {
    waiting_ = true;
    last_laggard_ = 0;
    stalled_ticks_ = 0;
    retry_timer_->Start(core_->config.flow_retry_interval);
  }
  return SendStatus::kBackpressured;
}

void FlowController::OnProgress() {
  if (waiting_ && Admissible()) {
    Reopen();
  }
}

void FlowController::OnStop() {
  retry_timer_->Stop();
  waiting_ = false;
  last_laggard_ = 0;
  stalled_ticks_ = 0;
}

uint64_t FlowController::credits() const {
  if (core_->config.send_window == 0) {
    return UINT64_MAX;
  }
  const uint64_t outstanding =
      core_->causal->send_seq() - core_->stability->strategy().StableFloorFor(core_->self);
  return outstanding >= core_->config.send_window ? 0
                                                  : core_->config.send_window - outstanding;
}

void FlowController::RetryTick() {
  if (!core_->started) {
    return;
  }
  // In-flight transport queues drain independently of acks reaching the
  // stability layer; refresh their charge so critical pressure can clear.
  core_->SyncTransportBudget();
  if (Admissible()) {
    Reopen();
    return;
  }
  if (core_->config.overload_policy == OverloadPolicy::kEvictLaggard &&
      core_->config.enable_membership && core_->config.send_window > 0) {
    const MemberId laggard = core_->stability->strategy().SlowestMemberFor(core_->self);
    if (laggard != 0 && laggard != core_->self) {
      if (laggard == last_laggard_) {
        ++stalled_ticks_;
      } else {
        last_laggard_ = laggard;
        stalled_ticks_ = 1;
      }
      if (stalled_ticks_ >= core_->config.laggard_patience) {
        // The same receiver has pinned the window shut for the whole patience
        // interval: shed it through the ordinary suspicion path, which frees
        // its retention at the resulting view change.
        ++core_->stats.laggards_reported;
        stalled_ticks_ = 0;
        last_laggard_ = 0;
        core_->membership->ReportFailure(laggard, /*deliberate=*/true);
      }
    }
  }
}

void FlowController::Reopen() {
  waiting_ = false;
  last_laggard_ = 0;
  stalled_ticks_ = 0;
  retry_timer_->Stop();
  ++core_->stats.flow_reopen_wakeups;
  if (ready_) {
    ready_();
  }
}

}  // namespace catocs
