#include "src/catocs/stability_layer.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/catocs/causal_layer.h"
#include "src/catocs/flow_control.h"
#include "src/catocs/membership_layer.h"
#include "src/catocs/overlay_buffer.h"
#include "src/mem/pool.h"

namespace catocs {

StabilityLayer::StabilityLayer(GroupCore* core)
    : OrderingLayer(core), strategy_(MakeCausalBuffer(core->config.causal_buffer)) {
  core->stability = this;
  if (core->config.budget.bounded()) {
    strategy_->SetBudget(&core->budget);
  }
  if (core->overlay_mode()) {
    overlay_strategy_ = static_cast<OverlayCausalStrategy*>(strategy_.get());
  }
  strategy_->SetMembers(core->view.members);
  if (overlay_strategy_ != nullptr) {
    // The founding view's tree is already built (the facade rebuilds the
    // overlay before assembling the pipeline); later rewires come through
    // OnViewChange.
    overlay_strategy_->SetReportSet(core->self, core->overlay.children());
  }
  if (core->config.observability) {
    strategy_->SetReleaseObserver(
        [this](const GroupDataPtr& msg, const char* cause) { OnBufferRelease(msg, cause); });
  }
}

void StabilityLayer::OnStart() {
  if (core_->config.ack_gossip_interval > sim::Duration::Zero()) {
    gossip_timer_ = std::make_unique<sim::PeriodicTimer>(
        core_->simulator, core_->config.ack_gossip_interval, [this] { GossipAcks(); });
    gossip_timer_->Start(core_->config.ack_gossip_interval);
  }
}

void StabilityLayer::OnStop() {
  if (gossip_timer_) {
    gossip_timer_->Stop();
  }
}

void StabilityLayer::OnSend(GroupData& data) {
  // Overlay mode: no piggybacked ack vectors — a per-message delivered-vector
  // is exactly the O(N) header the constant-metadata path forbids. Stability
  // evidence travels on the tree floor frames instead.
  if (core_->config.piggyback_acks && !core_->overlay_mode()) {
    data.set_acks(core_->causal->delivered());
  }
  if (core_->config.piggyback_causal) {
    // Footnote-4 variant: carry every unstable causal predecessor so the
    // receiver never has to wait — at the price of (much) larger messages.
    std::vector<GroupDataPtr> predecessors = strategy_->UnstableMessages();
    core_->stats.piggyback_msgs_carried += predecessors.size();
    for (const auto& p : predecessors) {
      core_->stats.piggyback_bytes += p->SizeBytes() + p->HeaderBytes();
    }
    data.set_piggyback(std::move(predecessors));
  }
}

bool StabilityLayer::OnReceive(MemberId src, uint32_t port, const net::PayloadPtr& payload) {
  if (port != GroupPorts::Ack(core_->config.group_id)) {
    return false;
  }
  if (const auto* floor = net::PayloadCast<StabilityFloor>(payload)) {
    if (floor->group() == core_->config.group_id) {
      OnStabilityFloor(src, *floor);
    }
    return true;
  }
  const auto* acks = net::PayloadCast<AckVector>(payload);
  assert(acks != nullptr);
  if (acks->group() != core_->config.group_id) {
    return true;
  }
  ObserveAckVector(src, acks->delivered());
  return true;
}

void StabilityLayer::OnStabilityFloor(MemberId src, const StabilityFloor& frame) {
  // A floor computed against another tree must not be read against ours:
  // subtrees are a pure function of the view, so a view-id mismatch means the
  // evidence sets don't line up (see overlay_buffer.h). Drop it; aggregation
  // re-converges from same-view reports within ~depth gossip rounds.
  if (overlay_strategy_ == nullptr || frame.view_id() != core_->view.id) {
    return;
  }
  if (frame.announce()) {
    // Root's global floor flooding down: adopt, release, relay to our own
    // children (same frame — the view id still matches by construction).
    if (overlay_strategy_->AdoptFloor(frame.floor())) {
      ++core_->stats.overlay_floor_updates;
      if (core_->flow != nullptr) {
        core_->flow->OnProgress();
      }
    }
    for (MemberId child : core_->overlay.children()) {
      core_->transport->SendUnreliable(child, GroupPorts::Ack(core_->config.group_id),
                                       mem::MakePooled<StabilityFloor>(
                                           core_->config.group_id, frame.view_id(),
                                           /*announce=*/true, frame.floor()));
      ++core_->stats.ack_msgs_sent;
    }
    return;
  }
  // A child's subtree floor: fold it into the aggregation matrix. It only
  // counts if src actually is one of our children under this tree — a frame
  // from anyone else raced a rewire and its subtree claim is meaningless.
  const auto& children = core_->overlay.children();
  if (std::find(children.begin(), children.end(), src) != children.end()) {
    overlay_strategy_->UpdateMemberVector(src, frame.floor());
  }
}

void StabilityLayer::OnViewChange(const View& view) {
  strategy_->SetMembers(view.members);
  if (overlay_strategy_ != nullptr) {
    // New tree, new aggregation set: forget child reports from the old tree
    // (their subtree claims no longer describe our subtrees) and restart from
    // same-view evidence. The adopted release floor survives — see
    // overlay_buffer.h for why that stays safe across views.
    overlay_strategy_->SetReportSet(core_->self, core_->overlay.children());
  }
  strategy_->Prune();
  if (core_->flow != nullptr) {
    core_->flow->OnProgress();
  }
}

void StabilityLayer::OnCausalDeliver(const GroupDataPtr& data) {
  if (core_->observing() && buffered_since_.emplace(data->id(), core_->simulator->now()).second) {
    core_->pipeline_stats.RecordEnter(HoldReason::kStability);
    core_->RecordSpan(data->id(), sim::SpanEvent::kEnter, name(),
                      ToString(HoldReason::kStability));
  }
  // Retain for atomic delivery until stable (without any piggybacked
  // predecessors, which are buffered in their own right). The empty-piggyback
  // check here keeps the common case free of a refcount round trip.
  if (data->piggyback().empty()) {
    strategy_->AddToBuffer(data);
  } else {
    strategy_->AddToBuffer(StripPiggyback(data));
  }
  strategy_->UpdateMemberEntry(core_->self, data->id().sender, data->id().seq);
  // The message's own timestamp is implicit-ack evidence about its sender
  // (a no-op for the full-vector baseline).
  strategy_->ObserveDeliveredTimestamp(data->id().sender, data->vt());
  MaybePrune();
  // Every delivery can advance the stability floor — let a backpressured
  // sender recheck its credits without waiting for the next retry tick.
  if (core_->flow != nullptr) {
    core_->flow->OnProgress();
  }
}

void StabilityLayer::ObserveAckVector(MemberId member, const VectorClock& vec) {
  strategy_->UpdateMemberVector(member, vec);
  MaybePrune();
  if (core_->flow != nullptr) {
    core_->flow->OnProgress();
  }
}

void StabilityLayer::MaybePrune() {
  if (core_->simulator->now() - last_prune_ >= core_->config.prune_interval) {
    last_prune_ = core_->simulator->now();
    strategy_->Prune();
  }
}

void StabilityLayer::OnBufferRelease(const GroupDataPtr& msg, const char* cause) {
  if (buffered_since_.empty()) {
    return;  // nothing charged (observability off): skip the lookup entirely
  }
  auto it = buffered_since_.find(msg->id());
  if (it == buffered_since_.end()) {
    // A copy we retained without causally delivering it ourselves (e.g.
    // flush redistribution of another member's unstable backlog): released
    // silently, since we never charged its entry.
    return;
  }
  core_->pipeline_stats.RecordRelease(HoldReason::kStability,
                                      core_->simulator->now() - it->second);
  core_->RecordSpan(msg->id(), sim::SpanEvent::kStable, name(), cause);
  // Retention provenance: a stability hold costs buffer memory, not delivery
  // latency, so it is tallied but never classified as false causality.
  core_->RecordHoldProvenance(msg->id(), name(), it->second, /*gates_delivery=*/false);
  buffered_since_.erase(it);
}

void StabilityLayer::GossipAcks() {
  if (core_->membership->flushing()) {
    return;
  }
  if (overlay_strategy_ != nullptr) {
    GossipOverlayFloor();
    return;
  }
  strategy_->Prune();
  auto acks = mem::MakePooled<AckVector>(core_->config.group_id, core_->causal->delivered());
  for (MemberId member : core_->view.members) {
    if (member != core_->self) {
      core_->transport->SendUnreliable(member, GroupPorts::Ack(core_->config.group_id), acks);
      ++core_->stats.ack_msgs_sent;
    }
  }
}

void StabilityLayer::GossipOverlayFloor() {
  // Refresh our own row (self's delivered-vector is always honest evidence
  // about self's subtree leaf contribution), then fold in the children's
  // last up-reports.
  overlay_strategy_->UpdateMemberVector(core_->self, core_->causal->delivered());
  VectorClock subtree = overlay_strategy_->SubtreeFloor();
  if (core_->overlay.is_root()) {
    // Our subtree is the whole view: the subtree floor IS the global floor.
    if (overlay_strategy_->AdoptFloor(subtree)) {
      ++core_->stats.overlay_floor_updates;
      if (core_->flow != nullptr) {
        core_->flow->OnProgress();
      }
    }
    const VectorClock global = overlay_strategy_->StableVector();
    for (MemberId child : core_->overlay.children()) {
      core_->transport->SendUnreliable(
          child, GroupPorts::Ack(core_->config.group_id),
          mem::MakePooled<StabilityFloor>(core_->config.group_id, core_->view.id,
                                          /*announce=*/true, global));
      ++core_->stats.ack_msgs_sent;
    }
  } else if (core_->overlay.in_overlay() && subtree.entry_count() > 0) {
    core_->transport->SendUnreliable(
        core_->overlay.parent(), GroupPorts::Ack(core_->config.group_id),
        mem::MakePooled<StabilityFloor>(core_->config.group_id, core_->view.id,
                                        /*announce=*/false, std::move(subtree)));
    ++core_->stats.ack_msgs_sent;
  }
}

}  // namespace catocs
