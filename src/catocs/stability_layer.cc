#include "src/catocs/stability_layer.h"

#include <cassert>
#include <utility>

#include "src/catocs/causal_layer.h"
#include "src/catocs/flow_control.h"
#include "src/catocs/membership_layer.h"
#include "src/mem/pool.h"

namespace catocs {

StabilityLayer::StabilityLayer(GroupCore* core)
    : OrderingLayer(core), strategy_(MakeCausalBuffer(core->config.causal_buffer)) {
  core->stability = this;
  if (core->config.budget.bounded()) {
    strategy_->SetBudget(&core->budget);
  }
  strategy_->SetMembers(core->view.members);
  if (core->config.observability) {
    strategy_->SetReleaseObserver(
        [this](const GroupDataPtr& msg, const char* cause) { OnBufferRelease(msg, cause); });
  }
}

void StabilityLayer::OnStart() {
  if (core_->config.ack_gossip_interval > sim::Duration::Zero()) {
    gossip_timer_ = std::make_unique<sim::PeriodicTimer>(
        core_->simulator, core_->config.ack_gossip_interval, [this] { GossipAcks(); });
    gossip_timer_->Start(core_->config.ack_gossip_interval);
  }
}

void StabilityLayer::OnStop() {
  if (gossip_timer_) {
    gossip_timer_->Stop();
  }
}

void StabilityLayer::OnSend(GroupData& data) {
  if (core_->config.piggyback_acks) {
    data.set_acks(core_->causal->delivered());
  }
  if (core_->config.piggyback_causal) {
    // Footnote-4 variant: carry every unstable causal predecessor so the
    // receiver never has to wait — at the price of (much) larger messages.
    std::vector<GroupDataPtr> predecessors = strategy_->UnstableMessages();
    core_->stats.piggyback_msgs_carried += predecessors.size();
    for (const auto& p : predecessors) {
      core_->stats.piggyback_bytes += p->SizeBytes() + p->HeaderBytes();
    }
    data.set_piggyback(std::move(predecessors));
  }
}

bool StabilityLayer::OnReceive(MemberId src, uint32_t port, const net::PayloadPtr& payload) {
  if (port != GroupPorts::Ack(core_->config.group_id)) {
    return false;
  }
  const auto* acks = net::PayloadCast<AckVector>(payload);
  assert(acks != nullptr);
  if (acks->group() != core_->config.group_id) {
    return true;
  }
  ObserveAckVector(src, acks->delivered());
  return true;
}

void StabilityLayer::OnViewChange(const View& view) {
  strategy_->SetMembers(view.members);
  strategy_->Prune();
  if (core_->flow != nullptr) {
    core_->flow->OnProgress();
  }
}

void StabilityLayer::OnCausalDeliver(const GroupDataPtr& data) {
  if (core_->observing() && buffered_since_.emplace(data->id(), core_->simulator->now()).second) {
    core_->pipeline_stats.RecordEnter(HoldReason::kStability);
    core_->RecordSpan(data->id(), sim::SpanEvent::kEnter, name(),
                      ToString(HoldReason::kStability));
  }
  // Retain for atomic delivery until stable (without any piggybacked
  // predecessors, which are buffered in their own right). The empty-piggyback
  // check here keeps the common case free of a refcount round trip.
  if (data->piggyback().empty()) {
    strategy_->AddToBuffer(data);
  } else {
    strategy_->AddToBuffer(StripPiggyback(data));
  }
  strategy_->UpdateMemberEntry(core_->self, data->id().sender, data->id().seq);
  // The message's own timestamp is implicit-ack evidence about its sender
  // (a no-op for the full-vector baseline).
  strategy_->ObserveDeliveredTimestamp(data->id().sender, data->vt());
  MaybePrune();
  // Every delivery can advance the stability floor — let a backpressured
  // sender recheck its credits without waiting for the next retry tick.
  if (core_->flow != nullptr) {
    core_->flow->OnProgress();
  }
}

void StabilityLayer::ObserveAckVector(MemberId member, const VectorClock& vec) {
  strategy_->UpdateMemberVector(member, vec);
  MaybePrune();
  if (core_->flow != nullptr) {
    core_->flow->OnProgress();
  }
}

void StabilityLayer::MaybePrune() {
  if (core_->simulator->now() - last_prune_ >= core_->config.prune_interval) {
    last_prune_ = core_->simulator->now();
    strategy_->Prune();
  }
}

void StabilityLayer::OnBufferRelease(const GroupDataPtr& msg, const char* cause) {
  if (buffered_since_.empty()) {
    return;  // nothing charged (observability off): skip the lookup entirely
  }
  auto it = buffered_since_.find(msg->id());
  if (it == buffered_since_.end()) {
    // A copy we retained without causally delivering it ourselves (e.g.
    // flush redistribution of another member's unstable backlog): released
    // silently, since we never charged its entry.
    return;
  }
  core_->pipeline_stats.RecordRelease(HoldReason::kStability,
                                      core_->simulator->now() - it->second);
  core_->RecordSpan(msg->id(), sim::SpanEvent::kStable, name(), cause);
  // Retention provenance: a stability hold costs buffer memory, not delivery
  // latency, so it is tallied but never classified as false causality.
  core_->RecordHoldProvenance(msg->id(), name(), it->second, /*gates_delivery=*/false);
  buffered_since_.erase(it);
}

void StabilityLayer::GossipAcks() {
  if (core_->membership->flushing()) {
    return;
  }
  strategy_->Prune();
  auto acks = mem::MakePooled<AckVector>(core_->config.group_id, core_->causal->delivered());
  for (MemberId member : core_->view.members) {
    if (member != core_->self) {
      core_->transport->SendUnreliable(member, GroupPorts::Ack(core_->config.group_id), acks);
      ++core_->stats.ack_msgs_sent;
    }
  }
}

}  // namespace catocs
