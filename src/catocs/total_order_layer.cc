#include "src/catocs/total_order_layer.h"

#include <algorithm>
#include <cassert>
#include <new>

#include "src/catocs/fifo_layer.h"
#include "src/mem/pool.h"

namespace catocs {

void TotalOrderLayer::OnStart() {
  if (core_->config.total_order_mode == TotalOrderMode::kToken &&
      core_->self == core_->view.members.front()) {
    // Seed the token at the lowest member.
    holding_token_ = true;
    core_->simulator->ScheduleAfter(core_->config.token_pass_delay, [this] {
      if (holding_token_) {
        PassToken(next_total_assign_);
      }
    });
  }
}

void TotalOrderLayer::SyncBudget() {
  if (!core_->budget.bounded()) {
    return;
  }
  // Pending set = assignments not yet consumed by delivery plus causally
  // delivered totals awaiting a sequence. The byte estimate is the map-node
  // footprint (seq + MessageId + tree overhead), not payload bytes — those
  // are charged by the retention component.
  static constexpr size_t kPendingEntryBytes = 64;
  const size_t entries = order_by_seq_.size() + unassigned_total_.size();
  core_->budget.Set(ResourceBudget::kTotalPending, entries * kPendingEntryBytes, entries);
}

bool TotalOrderLayer::OnReceive(MemberId /*src*/, uint32_t port, const net::PayloadPtr& payload) {
  const GroupId g = core_->config.group_id;
  if (port == GroupPorts::Order(g)) {
    OnOrder(payload);
    return true;
  }
  if (port == GroupPorts::Token(g)) {
    OnToken(payload);
    return true;
  }
  return false;
}

void TotalOrderLayer::OnCausalDeliver(const GroupData& data) {
  if (data.mode() != OrderingMode::kTotal) {
    return;
  }
  if (core_->observing() && !seq_by_id_.count(data.id()) &&
      awaiting_assign_.emplace(data.id(), core_->simulator->now()).second) {
    core_->pipeline_stats.RecordEnter(HoldReason::kOrderAssign);
    core_->RecordSpan(data.id(), sim::SpanEvent::kEnter, name(),
                      ToString(HoldReason::kOrderAssign));
  }
  if (core_->config.total_order_mode == TotalOrderMode::kSequencer) {
    if (core_->IsSequencer() && !seq_by_id_.count(data.id())) {
      SequencerAssign(data.id());
    }
  } else if (!seq_by_id_.count(data.id())) {
    unassigned_total_.push_back(data.id());
  }
  SyncBudget();
}

bool TotalOrderLayer::IsNextToDeliver(const MessageId& id) const {
  auto it = seq_by_id_.find(id);
  return it != seq_by_id_.end() && it->second == next_total_deliver_;
}

uint64_t TotalOrderLayer::ConsumeDeliverySlot() {
  const uint64_t total_seq = next_total_deliver_++;
  order_by_seq_.erase(total_seq);
  SyncBudget();
  return total_seq;
}

std::vector<std::pair<MessageId, uint64_t>> TotalOrderLayer::KnownAssignments() const {
  return std::vector<std::pair<MessageId, uint64_t>>(seq_by_id_.begin(), seq_by_id_.end());
}

void TotalOrderLayer::AdoptJoinerFloor(uint64_t next_deliver) {
  next_total_deliver_ = std::max(next_total_deliver_, next_deliver);
}

void TotalOrderLayer::AdoptConsolidatedOrder(const ViewInstall& install) {
  seq_by_id_.clear();
  order_by_seq_.clear();
  recent_assignments_.clear();
  ApplyAssignments(install.assignments());
  next_total_assign_ = std::max(next_total_assign_, install.next_total_seq());
  SyncBudget();
}

void TotalOrderLayer::SequencerAssign(const MessageId& id) {
  const uint64_t seq = next_total_assign_++;
  std::vector<std::pair<MessageId, uint64_t>> batch{{id, seq}};
  auto order = mem::MakePooled<OrderAssignment>(core_->config.group_id, batch);
  ++core_->stats.order_msgs_sent;
  core_->BroadcastReliable(GroupPorts::Order(core_->config.group_id), order);
  ApplyAssignments(batch);
}

std::vector<std::pair<MessageId, uint64_t>> TotalOrderLayer::AssignPendingUnorderedTotals() {
  std::vector<std::pair<MessageId, uint64_t>> batch;
  for (const auto& entry : core_->fifo->pending()) {
    if (entry.data->mode() == OrderingMode::kTotal && !seq_by_id_.count(entry.data->id())) {
      batch.emplace_back(entry.data->id(), next_total_assign_++);
    }
  }
  return batch;
}

void TotalOrderLayer::OnOrder(const net::PayloadPtr& payload) {
  const auto* order = net::PayloadCast<OrderAssignment>(payload);
  assert(order != nullptr);
  if (order->group() != core_->config.group_id) {
    return;
  }
  ApplyAssignments(order->assignments());
}

void TotalOrderLayer::ApplyAssignments(
    const std::vector<std::pair<MessageId, uint64_t>>& assignments) {
  const bool token_mode = core_->config.total_order_mode == TotalOrderMode::kToken;
  // Newly accepted assignments are staged in arena scratch, then merged into
  // the sorted window in one pass. The arena is reset before TryDeliverApp so
  // no scratch pointer survives into (possibly re-entrant) delivery.
  SeqAssignment* fresh = nullptr;
  size_t fresh_count = 0;
  if (token_mode && !assignments.empty()) {
    fresh = static_cast<SeqAssignment*>(
        scratch_.Allocate(assignments.size() * sizeof(SeqAssignment), alignof(SeqAssignment)));
  }
  for (const auto& [id, seq] : assignments) {
    if (seq_by_id_.emplace(id, seq).second) {
      if (core_->observing()) {
        if (auto it = awaiting_assign_.find(id); it != awaiting_assign_.end()) {
          core_->pipeline_stats.RecordRelease(HoldReason::kOrderAssign,
                                              core_->simulator->now() - it->second);
          core_->RecordSpan(id, sim::SpanEvent::kStamp, name(),
                            "seq=" + std::to_string(seq));
          core_->RecordHoldProvenance(id, name(), it->second);
          awaiting_assign_.erase(it);
        }
      }
      order_by_seq_[seq] = id;
      if (token_mode) {
        new (&fresh[fresh_count++]) SeqAssignment(seq, id);
      }
    }
  }
  if (fresh_count > 0) {
    MergeRecentAssignments(fresh, fresh_count);
  }
  scratch_.Reset();
  SyncBudget();
  core_->fifo->TryDeliverApp();
}

void TotalOrderLayer::MergeRecentAssignments(SeqAssignment* fresh, size_t n) {
  // Incoming batches are usually already seq-ascending (a holder assigns
  // consecutively); consolidated-order adoption is not, so sort — cheap for
  // the tiny runs this sees.
  std::sort(fresh, fresh + n);
  const size_t old_count = recent_assignments_.size();
  auto* merged = static_cast<SeqAssignment*>(
      scratch_.Allocate((old_count + n) * sizeof(SeqAssignment), alignof(SeqAssignment)));
  // Two-pointer merge of the two seq-sorted runs; on a seq collision the
  // incoming entry wins (the overwrite semantics the old map had).
  size_t i = 0;
  size_t j = 0;
  size_t out = 0;
  while (i < old_count && j < n) {
    if (recent_assignments_[i].first < fresh[j].first) {
      new (&merged[out++]) SeqAssignment(recent_assignments_[i++]);
    } else if (fresh[j].first < recent_assignments_[i].first) {
      new (&merged[out++]) SeqAssignment(fresh[j++]);
    } else {
      new (&merged[out++]) SeqAssignment(fresh[j++]);
      ++i;
    }
  }
  while (i < old_count) {
    new (&merged[out++]) SeqAssignment(recent_assignments_[i++]);
  }
  while (j < n) {
    new (&merged[out++]) SeqAssignment(fresh[j++]);
  }
  // Trim the oldest seqs beyond the window, exactly as the map's
  // erase-from-begin loop did.
  const size_t keep = std::min<size_t>(out, kTokenAssignmentWindow);
  recent_assignments_.assign(merged + (out - keep), merged + out);
}

void TotalOrderLayer::OnToken(const net::PayloadPtr& payload) {
  const auto* token = net::PayloadCast<OrderToken>(payload);
  assert(token != nullptr);
  if (token->group() != core_->config.group_id ||
      core_->config.total_order_mode != TotalOrderMode::kToken) {
    return;
  }
  if (!core_->started) {
    return;  // stopped member drops the token; membership would regenerate it
  }
  holding_token_ = true;
  next_total_assign_ = std::max(next_total_assign_, token->next_total_seq());
  // The token's assignment log is authoritative for everything sequenced so
  // far, including assignments whose broadcasts are still in flight to us.
  ApplyAssignments(token->assignments());

  // Sequence every message we have causally delivered but that is not yet
  // ordered, in our causal delivery order. Because causal delivery of m2
  // implies prior causal delivery of any m1 that happens-before it, this
  // keeps the total order consistent with causality.
  std::vector<std::pair<MessageId, uint64_t>> batch;
  while (!unassigned_total_.empty()) {
    const MessageId id = unassigned_total_.front();
    unassigned_total_.pop_front();
    if (!seq_by_id_.count(id)) {
      batch.emplace_back(id, next_total_assign_++);
    }
  }
  if (!batch.empty()) {
    auto order = mem::MakePooled<OrderAssignment>(core_->config.group_id, batch);
    ++core_->stats.order_msgs_sent;
    core_->BroadcastReliable(GroupPorts::Order(core_->config.group_id), order);
    ApplyAssignments(batch);
  }
  SyncBudget();  // the drain alone shrinks unassigned_total_ even with an empty batch
  core_->simulator->ScheduleAfter(core_->config.token_pass_delay, [this] {
    if (holding_token_ && core_->started) {
      PassToken(next_total_assign_);
    }
  });
}

void TotalOrderLayer::PassToken(uint64_t next_total_seq) {
  holding_token_ = false;
  ++core_->stats.token_passes;
  // Next member in id order, wrapping.
  auto it = std::upper_bound(core_->view.members.begin(), core_->view.members.end(), core_->self);
  const MemberId next = it == core_->view.members.end() ? core_->view.members.front() : *it;
  if (next == core_->self) {
    holding_token_ = true;  // sole member keeps the token
    return;
  }
  // Re-key the seq-sorted window by MessageId for the token's flat,
  // id-sorted assignment log. Ids are unique in the window (seq_by_id_
  // guards acceptance), so a plain sort suffices.
  std::vector<std::pair<MessageId, uint64_t>> carried;
  carried.reserve(recent_assignments_.size());
  for (const auto& [seq, id] : recent_assignments_) {
    carried.emplace_back(id, seq);
  }
  std::sort(carried.begin(), carried.end());
  core_->transport->SendReliable(next, GroupPorts::Token(core_->config.group_id),
                                 mem::MakePooled<OrderToken>(core_->config.group_id,
                                                             next_total_seq, std::move(carried)));
}

void TotalOrderLayer::OnViewChange(const View& /*view*/) {
  // The new sequencer orders any held messages that lost their assignment
  // with the old sequencer, in its local causal delivery order.
  if (core_->config.total_order_mode == TotalOrderMode::kSequencer && core_->IsSequencer()) {
    std::vector<std::pair<MessageId, uint64_t>> batch = AssignPendingUnorderedTotals();
    if (!batch.empty()) {
      auto order = mem::MakePooled<OrderAssignment>(core_->config.group_id, batch);
      ++core_->stats.order_msgs_sent;
      core_->BroadcastReliable(GroupPorts::Order(core_->config.group_id), order);
      ApplyAssignments(batch);
    }
  }
  // Token regeneration: the lowest survivor re-seeds the token.
  if (core_->config.total_order_mode == TotalOrderMode::kToken && core_->IsSequencer() &&
      core_->started) {
    holding_token_ = true;
    core_->simulator->ScheduleAfter(core_->config.token_pass_delay, [this] {
      if (holding_token_ && core_->started) {
        PassToken(next_total_assign_);
      }
    });
  }
}

}  // namespace catocs
