// View-synchronous membership: heartbeat failure detection and the flush
// protocol. On suspicion, the surviving member with the lowest id
// coordinates: all survivors stop sending, contribute their unstable
// messages and delivery state, the coordinator computes a common delivery
// cut and redistributes whatever any survivor is missing, and finally a new
// view is installed consistently everywhere. The cost of all of this —
// control messages, re-forwarded payload bytes, and the time sends stay
// blocked — is what experiment E10 measures.
//
// This layer orchestrates the view-install sequence across its siblings
// (causal cut adoption, failed-sender cleanup, consolidated total order,
// stability re-anchoring) in explicit protocol order; see OnViewInstall.

#ifndef REPRO_SRC_CATOCS_MEMBERSHIP_LAYER_H_
#define REPRO_SRC_CATOCS_MEMBERSHIP_LAYER_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "src/catocs/layer.h"

namespace catocs {

class MembershipLayer : public OrderingLayer {
 public:
  explicit MembershipLayer(GroupCore* core) : OrderingLayer(core) { core->membership = this; }

  const char* name() const override { return "membership"; }

  void OnStart() override;
  void OnStop() override;
  bool OnReceive(MemberId src, uint32_t port, const net::PayloadPtr& payload) override;

  // Facade entry points (see GroupMember for the contracts). A deliberate
  // report is a policy decision about a possibly-alive member (the
  // evict-laggard overload policy) and skips the fresh-evidence veto that
  // guards liveness hearsay; the default covers liveness evidence like
  // transport give-ups.
  void JoinGroup(MemberId contact);
  void ReportFailure(MemberId suspect, bool deliberate = false);

  bool flushing() const { return flushing_; }
  // Sends issued during a flush are queued here and released on install.
  void QueueBlockedSend(OrderingMode mode, net::PayloadPtr payload);

 private:
  void OnJoinRequest(const JoinRequest& request);
  void SendHeartbeats();
  void CheckFailures();
  void HandleSuspicion(MemberId suspect, bool deliberate = false);
  void InitiateFlush();
  void OnFlushRequest(MemberId src, const FlushRequest& req);
  void OnFlushState(MemberId src, const FlushState& state);
  void MaybeCompleteFlush();
  void OnViewInstall(const ViewInstall& install);
  void SendFlushStateTo(MemberId coordinator, uint64_t new_view_id);
  void FinishBlockedSends();

  std::unique_ptr<sim::PeriodicTimer> heartbeat_timer_;
  std::unique_ptr<sim::PeriodicTimer> failure_check_timer_;
  std::map<MemberId, sim::TimePoint> last_heard_;
  std::set<MemberId> suspected_;
  bool flushing_ = false;
  uint64_t flush_view_id_ = 0;
  uint64_t quorum_blocked_view_ = 0;  // last flush round counted as blocked
  sim::TimePoint flush_started_;
  std::map<MemberId, FlushState> flush_states_;  // coordinator only
  std::set<MemberId> pending_joiners_;           // coordinator only
  bool joining_ = false;                         // joiner side
  struct BlockedSend {
    OrderingMode mode;
    net::PayloadPtr payload;
    sim::TimePoint queued_at;  // hold attribution under observability
    // Semantic dependencies declared before the send hit the flush block;
    // restored into the core when the send is re-issued so the eventual
    // message still carries them (see GroupMember::DeclareDependency).
    std::vector<MessageId> deps;
  };
  std::deque<BlockedSend> blocked_sends_;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_MEMBERSHIP_LAYER_H_
