#include "src/catocs/hybrid_buffer.h"

#include <algorithm>

namespace catocs {

void HybridBuffer::SetMembers(const std::vector<MemberId>& members) {
  members_ = members;
  std::sort(members_.begin(), members_.end());
  // Forget progress reports from departed members so they no longer hold the
  // minimum down; keep rows for everyone else (including non-member late
  // reporters, which simply never count toward the floor).
  delivered_by_.erase(std::remove_if(delivered_by_.begin(), delivered_by_.end(),
                                     [this](const std::pair<MemberId, VectorClock>& row) {
                                       return !std::binary_search(members_.begin(),
                                                                  members_.end(), row.first);
                                     }),
                      delivered_by_.end());
  reporting_ = 0;
  for (MemberId member : members_) {
    if (MatrixRowIfPresent(delivered_by_, member) != nullptr) {
      ++reporting_;
    }
  }
  // Evicted senders can never be acked under their old id again; drop any
  // non-contiguous overflow strays they left behind (retention_ring.h). A
  // no-op on the protocol path, where retention is always contiguous.
  buffer_.PurgeOverflowNotIn(members_, [this](const GroupDataPtr& msg) {
    buffered_bytes_ -= msg->SizeBytes() + msg->HeaderBytes();
    NotifyRelease(msg, "evicted-sender");
  });
  RecomputeFloor();
  ChargeBudget(buffered_bytes_, buffer_.count());
}

VectorClock& HybridBuffer::Row(MemberId member) {
  bool created = false;
  VectorClock& row = MatrixRowCached(delivered_by_, member, row_cache_, &created);
  if (created && std::binary_search(members_.begin(), members_.end(), member)) {
    ++reporting_;
    if (AllReported()) {
      // The last holdout just reported: the floor becomes meaningful. The
      // fresh row is still empty here, so this recompute yields an empty
      // floor; the caller's updates advance it entry by entry.
      RecomputeFloor();
    }
  }
  return row;
}

void HybridBuffer::UpdateMemberVector(MemberId member, const VectorClock& vec) {
  VectorClock& row = Row(member);
  // Only raises to a current member's row can move a per-sender minimum;
  // non-member rows (late reports from evicted ids) never count toward it.
  const bool counted =
      AllReported() && std::binary_search(members_.begin(), members_.end(), member);
  for (const auto& [sender, count] : vec.entries()) {
    const uint64_t old_value = row.Get(sender);
    if (count > old_value) {
      row.RaiseTo(sender, count);
      if (counted) {
        NoteRowRaise(sender, old_value);
      }
    }
  }
}

void HybridBuffer::UpdateMemberEntry(MemberId member, MemberId sender, uint64_t count) {
  VectorClock& row = Row(member);
  const uint64_t old_value = row.Get(sender);
  if (count <= old_value) {
    return;
  }
  row.RaiseTo(sender, count);
  if (AllReported() && std::binary_search(members_.begin(), members_.end(), member)) {
    NoteRowRaise(sender, old_value);
  }
}

void HybridBuffer::ObserveDeliveredTimestamp(MemberId sender, const VectorClock& vt) {
  // The timestamp is a truthful ack vector from the message's sender: to
  // stamp vt it must have causally delivered vt[m] messages from every m
  // (including its own message, by self-delivery at send).
  UpdateMemberVector(sender, vt);
}

void HybridBuffer::AddToBuffer(const GroupDataPtr& msg) {
  if (AllReported() && msg->id().seq <= floor_.Get(msg->id().sender)) {
    return;  // already stable everywhere; nothing to retain
  }
  if (!buffer_.Add(msg)) {
    return;
  }
  buffered_bytes_ += msg->SizeBytes() + msg->HeaderBytes();
  peak_count_ = std::max(peak_count_, buffer_.count());
  peak_bytes_ = std::max(peak_bytes_, buffered_bytes_);
  ChargeBudget(buffered_bytes_, buffer_.count());
}

VectorClock HybridBuffer::StableVector() const {
  // Mirrors the full tracker's observable semantics: nothing is stable until
  // every current member has reported.
  return AllReported() ? floor_ : VectorClock{};
}

uint64_t HybridBuffer::StableFloorFor(MemberId sender) const {
  return AllReported() ? floor_.Get(sender) : 0;
}

MemberId HybridBuffer::SlowestMemberFor(MemberId sender) const {
  MemberId slowest = 0;
  uint64_t lowest = UINT64_MAX;
  for (MemberId member : members_) {
    const VectorClock* row = MatrixRowIfPresent(delivered_by_, member);
    const uint64_t delivered = row == nullptr ? 0 : row->Get(sender);
    if (delivered < lowest) {
      lowest = delivered;
      slowest = member;
    }
  }
  return slowest;
}

void HybridBuffer::NoteRowRaise(MemberId sender, uint64_t old_value) {
  auto it = floor_min_.find(sender);
  if (it == floor_min_.end()) {
    // First raise on this column since the cache was (in)validated: pay the
    // scan once, then stay incremental.
    it = floor_min_.emplace(sender, ScanMin(sender)).first;
  } else if (old_value > it->second.value) {
    return;  // the advanced row sat above the minimum; it is unchanged
  } else if (--it->second.rows_at_value > 0) {
    return;  // other rows still hold the old minimum
  } else {
    // The last row at the minimum advanced, so the column minimum moved —
    // the rescan is amortized against this floor advance.
    it->second = ScanMin(sender);
  }
  const uint64_t min_count = it->second.value;
  if (min_count <= floor_.Get(sender)) {
    return;
  }
  floor_.RaiseTo(sender, min_count);
  ReleaseStable(sender, min_count);
}

HybridBuffer::FloorMin HybridBuffer::ScanMin(MemberId sender) const {
  // Callers guarantee members_ is non-empty (the raised row belongs to a
  // current member) and every member has a row (AllReported()).
  FloorMin min{UINT64_MAX, 0};
  for (MemberId member : members_) {
    const uint64_t value = MatrixRowIfPresent(delivered_by_, member)->Get(sender);
    if (value < min.value) {
      min = {value, 1};
    } else if (value == min.value) {
      ++min.rows_at_value;
    }
  }
  return min;
}

void HybridBuffer::RecomputeFloor() {
  floor_ = VectorClock{};
  floor_min_.clear();
  if (!AllReported() || members_.empty()) {
    return;
  }
  bool first = true;
  for (MemberId member : members_) {
    const VectorClock& row = *MatrixRowIfPresent(delivered_by_, member);
    if (first) {
      floor_ = row;
      first = false;
    } else {
      floor_.MeetMin(row);
    }
  }
  ReleaseAllStable();
}

void HybridBuffer::ReleaseStable(MemberId sender, uint64_t floor) {
  buffer_.Release(sender, floor, [this](const GroupDataPtr& msg) {
    buffered_bytes_ -= msg->SizeBytes() + msg->HeaderBytes();
    NotifyRelease(msg, "floor");
  });
  ChargeBudget(buffered_bytes_, buffer_.count());
}

void HybridBuffer::ReleaseAllStable() {
  if (floor_.empty()) {
    return;
  }
  buffer_.ReleaseStable(floor_, [this](const GroupDataPtr& msg) {
    buffered_bytes_ -= msg->SizeBytes() + msg->HeaderBytes();
    NotifyRelease(msg, "floor-sweep");
  });
  ChargeBudget(buffered_bytes_, buffer_.count());
}

void HybridBuffer::Prune() {
  // Releases happen eagerly as acks arrive; this exists for interface parity
  // (gossip ticks and view changes call it) and is normally a no-op.
  if (AllReported()) {
    ReleaseAllStable();
  }
}

std::vector<GroupDataPtr> HybridBuffer::UnstableMessages() const {
  return buffer_.CollectAll();
}

GroupDataPtr HybridBuffer::Find(const MessageId& id) const { return buffer_.Find(id); }

}  // namespace catocs
