// Full-vector-clock stability tracking: the paper-faithful baseline
// retention-buffer strategy (see causal_buffer.h for the interface).
//
// Members learn each other's progress from ack vectors piggybacked on data
// messages and/or periodic gossip; the stability floor is recomputed by
// walking the whole member matrix, so callers throttle Prune() off the
// per-message path. The buffering this forces is the quantity §5 predicts
// grows quadratically system-wide, so the tracker exposes exact occupancy
// numbers.

#ifndef REPRO_SRC_CATOCS_STABILITY_H_
#define REPRO_SRC_CATOCS_STABILITY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/catocs/causal_buffer.h"
#include "src/catocs/message.h"

namespace catocs {

class StabilityTracker : public CausalBufferStrategy {
 public:
  const char* name() const override { return "full-vector"; }

  void SetMembers(const std::vector<MemberId>& members) override;
  void UpdateMemberVector(MemberId member, const VectorClock& vec) override;
  void UpdateMemberEntry(MemberId member, MemberId sender, uint64_t count) override;
  void AddToBuffer(const GroupDataPtr& msg) override;
  VectorClock StableVector() const override;
  void Prune() override;
  std::vector<GroupDataPtr> UnstableMessages() const override;
  GroupDataPtr Find(const MessageId& id) const override;

  size_t buffered_count() const override { return buffer_.size(); }
  size_t buffered_bytes() const override { return buffered_bytes_; }
  size_t peak_buffered_count() const override { return peak_count_; }
  size_t peak_buffered_bytes() const override { return peak_bytes_; }

 private:
  std::vector<MemberId> members_;
  // member -> (sender -> contiguous delivered count). An entry exists once
  // the member has reported at all, even if it has delivered nothing yet.
  std::map<MemberId, VectorClock> delivered_by_;
  std::map<MessageId, GroupDataPtr> buffer_;
  size_t buffered_bytes_ = 0;
  size_t peak_count_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_STABILITY_H_
