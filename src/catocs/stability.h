// Stability tracking and message buffering for atomic delivery.
//
// A message is *stable* once every current group member has delivered it;
// until then each member retains a copy so any member can re-forward it if
// the original sender fails mid-multicast (§2). Members learn each other's
// progress from ack vectors piggybacked on data messages and/or periodic
// gossip. The buffering this forces is the quantity §5 predicts grows
// quadratically system-wide, so the tracker exposes exact occupancy numbers.

#ifndef REPRO_SRC_CATOCS_STABILITY_H_
#define REPRO_SRC_CATOCS_STABILITY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/catocs/message.h"

namespace catocs {

class StabilityTracker {
 public:
  // The member set over which the stability minimum is taken. Removing a
  // member (it failed) can only make more messages stable.
  void SetMembers(const std::vector<MemberId>& members);

  // Records that `member` has contiguously delivered `vec[s]` messages from
  // each sender s. A single linear merge of two flat clocks — the per-data-
  // message hot path when acks are piggybacked.
  void UpdateMemberVector(MemberId member, const VectorClock& vec);

  // Point update: `member` has contiguously delivered `count` messages from
  // `sender`. For the per-delivery hot path.
  void UpdateMemberEntry(MemberId member, MemberId sender, uint64_t count);

  // Adds a delivered (or sent) message to the retention buffer.
  void AddToBuffer(const GroupDataPtr& msg);

  // Per-sender stability floor: min over members of their delivered count.
  VectorClock StableVector() const;

  // Drops every buffered message at or below the stability floor.
  void Prune();

  // Messages not yet known stable (what a flush contributes).
  std::vector<GroupDataPtr> UnstableMessages() const;

  // Looks up a buffered message; nullptr when absent (already pruned).
  GroupDataPtr Find(const MessageId& id) const;

  size_t buffered_count() const { return buffer_.size(); }
  size_t buffered_bytes() const { return buffered_bytes_; }
  size_t peak_buffered_count() const { return peak_count_; }
  size_t peak_buffered_bytes() const { return peak_bytes_; }

 private:
  std::vector<MemberId> members_;
  // member -> (sender -> contiguous delivered count). An entry exists once
  // the member has reported at all, even if it has delivered nothing yet.
  std::map<MemberId, VectorClock> delivered_by_;
  std::map<MessageId, GroupDataPtr> buffer_;
  size_t buffered_bytes_ = 0;
  size_t peak_count_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_STABILITY_H_
