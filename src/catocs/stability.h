// Full-vector-clock stability tracking: the paper-faithful baseline
// retention-buffer strategy (see causal_buffer.h for the interface).
//
// Members learn each other's progress from ack vectors piggybacked on data
// messages and/or periodic gossip; the stability floor is recomputed by
// walking the whole member matrix, so callers throttle Prune() off the
// per-message path. The buffering this forces is the quantity §5 predicts
// grows quadratically system-wide, so the tracker exposes exact occupancy
// numbers.
//
// Storage is tuned for the per-delivery hot path: retained copies live in
// per-sender contiguous lanes (retention_ring.h) instead of one ordered
// map, and the member matrix is a sorted flat vector of rows — binary
// search over contiguous memory instead of tree-node chasing.

#ifndef REPRO_SRC_CATOCS_STABILITY_H_
#define REPRO_SRC_CATOCS_STABILITY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/catocs/causal_buffer.h"
#include "src/catocs/message.h"
#include "src/catocs/retention_ring.h"

namespace catocs {

// member -> (sender -> contiguous delivered count), sorted by member. A row
// exists once the member has reported at all, even if it has delivered
// nothing yet.
using MemberMatrix = std::vector<std::pair<MemberId, VectorClock>>;

// The member's row, created in place if absent.
VectorClock& MatrixRow(MemberMatrix& matrix, MemberId member);
// The member's row, or nullptr if it has never reported.
const VectorClock* MatrixRowIfPresent(const MemberMatrix& matrix, MemberId member);
// MatrixRow with a caller-held index cache. The per-delivery update always
// touches our own row, so the cached slot hits nearly every time; rows shift
// on insert/erase, so the slot is validated (member match) before use, never
// trusted. `created` (optional) reports whether a new row was inserted.
VectorClock& MatrixRowCached(MemberMatrix& matrix, MemberId member, size_t& cache,
                             bool* created = nullptr);

class StabilityTracker : public CausalBufferStrategy {
 public:
  const char* name() const override { return "full-vector"; }

  void SetMembers(const std::vector<MemberId>& members) override;
  void UpdateMemberVector(MemberId member, const VectorClock& vec) override;
  void UpdateMemberEntry(MemberId member, MemberId sender, uint64_t count) override;
  void AddToBuffer(const GroupDataPtr& msg) override;
  VectorClock StableVector() const override;
  uint64_t StableFloorFor(MemberId sender) const override;
  MemberId SlowestMemberFor(MemberId sender) const override;
  void Prune() override;
  std::vector<GroupDataPtr> UnstableMessages() const override;
  GroupDataPtr Find(const MessageId& id) const override;

  size_t buffered_count() const override { return buffer_.count(); }
  size_t buffered_bytes() const override { return buffered_bytes_; }
  size_t peak_buffered_count() const override { return peak_count_; }
  size_t peak_buffered_bytes() const override { return peak_bytes_; }

 private:
  std::vector<MemberId> members_;
  MemberMatrix delivered_by_;
  size_t row_cache_ = 0;  // last-touched row index, validated before use
  RetentionRing buffer_;
  size_t buffered_bytes_ = 0;
  size_t peak_count_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_STABILITY_H_
