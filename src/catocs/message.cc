#include "src/catocs/message.h"

#include <sstream>

namespace catocs {

const char* ToString(OrderingMode mode) {
  switch (mode) {
    case OrderingMode::kUnordered:
      return "unordered";
    case OrderingMode::kCausal:
      return "causal";
    case OrderingMode::kTotal:
      return "total";
  }
  return "?";
}

std::string MessageId::ToString() const {
  std::ostringstream out;
  out << sender << "#" << seq;
  return out.str();
}

GroupDataPtr StripPiggyback(const GroupDataPtr& data) {
  if (data->piggyback().empty()) {
    return data;
  }
  auto stripped = std::make_shared<GroupData>(data->group(), data->id(), data->mode(), data->vt(),
                                              data->app_payload(), data->sent_at());
  stripped->set_acks(data->acks());
  return stripped;
}

size_t GroupData::SizeBytes() const {
  size_t total = app_payload_->SizeBytes();
  for (const auto& msg : piggyback_) {
    total += msg->SizeBytes() + msg->HeaderBytes();
  }
  return total;
}

std::vector<net::HeaderSection> GroupData::HeaderSections() const {
  // Base frame: group(4) + sender(4) + seq(8) + mode(1).
  return {{"frame", 17}, {"causal", vt_.SizeBytes()}, {"stability", acks_.SizeBytes()}};
}

size_t GroupData::HeaderBytes() const {
  size_t total = 0;
  for (const auto& section : HeaderSections()) {
    total += section.bytes;
  }
  return total;
}

std::string GroupData::Describe() const {
  std::ostringstream out;
  out << ToString(mode_) << " " << id_.ToString() << " vt=" << vt_.ToString() << " ["
      << app_payload_->Describe() << "]";
  return out.str();
}

size_t FlushState::SizeBytes() const {
  size_t total = delivered_.SizeBytes() + known_assignments_.size() * 20 + 8;
  for (const auto& msg : unstable_) {
    total += msg->SizeBytes() + msg->HeaderBytes();
  }
  return total;
}

size_t ViewInstall::SizeBytes() const {
  size_t total = 20 + members_.size() * 4 + assignments_.size() * 20;
  for (const auto& msg : missing_) {
    total += msg->SizeBytes() + msg->HeaderBytes();
  }
  if (app_state_ != nullptr) {
    total += app_state_->SizeBytes();
  }
  return total;
}

}  // namespace catocs
