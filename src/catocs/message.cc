#include "src/catocs/message.h"

#include <cassert>
#include <sstream>

#include "src/catocs/wire_codec.h"
#include "src/mem/pool.h"

namespace catocs {

const char* ToString(OrderingMode mode) {
  switch (mode) {
    case OrderingMode::kUnordered:
      return "unordered";
    case OrderingMode::kCausal:
      return "causal";
    case OrderingMode::kTotal:
      return "total";
  }
  return "?";
}

std::string MessageId::ToString() const {
  std::ostringstream out;
  out << sender << "#" << seq;
  return out.str();
}

GroupDataPtr StripPiggyback(const GroupDataPtr& data) {
  if (data->piggyback().empty()) {
    return data;
  }
  auto stripped = mem::MakePooled<GroupData>(data->group(), data->id(), data->mode(), data->vt(),
                                             data->app_payload(), data->sent_at());
  stripped->set_acks(data->acks());
  if (data->is_overlay()) {
    stripped->set_overlay_view(data->overlay_view());
  }
  return stripped;
}

size_t GroupData::SizeBytes() const {
  size_t total = app_payload_->SizeBytes();
  for (const auto& msg : piggyback_) {
    total += msg->SizeBytes() + msg->HeaderBytes();
  }
  return total;
}

std::vector<net::HeaderSection> GroupData::HeaderSections() const {
  // Base frame: group(4) + sender(4) + seq(8) + mode(1). The causal section
  // is whichever wire form the frame travels under: the constant overlay
  // header, the delta/keyframe encoding, or the full clock.
  return {{"frame", 17}, {"causal", CausalHeaderBytes()}, {"stability", acks_.SizeBytes()}};
}

size_t GroupData::CausalHeaderBytes() const {
  if (overlay_view_ != 0) {
    return kOverlayHeaderBytes;
  }
  return wire_vt_.has_value() ? wire_vt_->SizeBytes() : vt_.SizeBytes();
}

size_t GroupData::HeaderBytes() const {
  // Same arithmetic as HeaderSections(), computed directly: this runs once
  // per send per destination, and materializing the section vector was
  // measurable on the fan-out path.
  return 17 + CausalHeaderBytes() + acks_.SizeBytes();
}

GroupBatch::GroupBatch(GroupId group, std::vector<GroupDataPtr> entries)
    : group_(group), entries_(std::move(entries)) {
  assert(!entries_.empty());
#ifndef NDEBUG
  for (size_t i = 0; i < entries_.size(); ++i) {
    assert(entries_[i]->id().sender == entries_.front()->id().sender &&
           "batch constituents share one sender");
    assert(entries_[i]->id().seq == entries_.front()->id().seq + i &&
           "batch constituents are contiguous");
  }
#endif
  header_bytes_ = kBaseFrameBytes;
  const VectorClock* prev_vt = nullptr;
  const VectorClock* prev_acks = nullptr;
  for (const GroupDataPtr& entry : entries_) {
    // mode(1) + payload_len(4), then each clock as a delta against the
    // previous constituent (a flag byte plus the changed entries; the first
    // constituent's "delta" is its full clock).
    header_bytes_ += 5;
    header_bytes_ += 1 + DeltaEntryCount(prev_vt, entry->vt()) * VectorClock::kEntryBytes;
    header_bytes_ += 1 + DeltaEntryCount(prev_acks, entry->acks()) * VectorClock::kEntryBytes;
    prev_vt = &entry->vt();
    prev_acks = &entry->acks();
  }
}

size_t GroupBatch::SizeBytes() const {
  size_t total = 0;
  for (const GroupDataPtr& entry : entries_) {
    total += entry->SizeBytes();
  }
  return total;
}

std::vector<net::HeaderSection> GroupBatch::HeaderSections() const {
  return {{"frame", kBaseFrameBytes}, {"batch-meta", header_bytes_ - kBaseFrameBytes}};
}

std::string GroupBatch::Describe() const {
  std::ostringstream out;
  out << "batch " << entries_.front()->id().ToString() << "+" << (entries_.size() - 1);
  return out.str();
}

std::string GroupData::Describe() const {
  std::ostringstream out;
  out << ToString(mode_) << " " << id_.ToString() << " vt=" << vt_.ToString() << " ["
      << app_payload_->Describe() << "]";
  return out.str();
}

size_t FlushState::SizeBytes() const {
  size_t total = delivered_.SizeBytes() + known_assignments_.size() * 20 + 8;
  for (const auto& msg : unstable_) {
    total += msg->SizeBytes() + msg->HeaderBytes();
  }
  return total;
}

size_t ViewInstall::SizeBytes() const {
  size_t total = 20 + members_.size() * 4 + assignments_.size() * 20;
  for (const auto& msg : missing_) {
    total += msg->SizeBytes() + msg->HeaderBytes();
  }
  if (app_state_ != nullptr) {
    total += app_state_->SizeBytes();
  }
  return total;
}

}  // namespace catocs
