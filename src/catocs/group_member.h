// GroupMember: one process's endpoint in a CATOCS process group.
//
// Implements the full protocol stack the paper critiques:
//   * causal multicast (cbcast) — Birman–Schiper–Stephenson vector-clock
//     delay queue; a message is delivered only when everything that
//     happens-before it has been delivered;
//   * totally ordered multicast (abcast) — causal delivery plus a single
//     group-wide sequence, assigned either by a fixed sequencer (lowest
//     member id) or by a rotating token;
//   * atomic delivery — every member buffers delivered messages until they
//     are known stable (delivered everywhere), learning progress from ack
//     vectors piggybacked on data and/or periodic gossip;
//   * view-synchronous membership — heartbeat failure detection and a flush
//     protocol that blocks sending, brings survivors to a common delivery
//     cut, and installs a new view with an ordered view-change notification;
//   * the footnote-4 variant — instead of delaying at receivers, carry
//     copies of unstable causal predecessors on each message.
//
// Every cost the paper attributes to CATOCS (delay queues, buffering, header
// bytes, blocked time during flush) is measured and exposed via stats().

#ifndef REPRO_SRC_CATOCS_GROUP_MEMBER_H_
#define REPRO_SRC_CATOCS_GROUP_MEMBER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/catocs/message.h"
#include "src/catocs/stability.h"
#include "src/catocs/vector_clock.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace catocs {

enum class TotalOrderMode {
  kSequencer,  // fixed sequencer: lowest member id in the current view
  kToken,      // rotating token assigns sequence numbers
};

struct GroupConfig {
  GroupId group_id = 1;

  // Stability: piggyback the sender's delivered-vector on every data message,
  // and/or gossip it periodically (Zero disables gossip).
  bool piggyback_acks = true;
  sim::Duration ack_gossip_interval = sim::Duration::Millis(50);

  // Footnote-4 causal variant: attach unstable causal predecessors to each
  // message instead of relying on receiver-side delay alone.
  bool piggyback_causal = false;

  TotalOrderMode total_order_mode = TotalOrderMode::kSequencer;
  // Delay before the token is passed on (models token processing).
  sim::Duration token_pass_delay = sim::Duration::Micros(200);

  // How often (in simulated time) a member recomputes stability and prunes
  // its retention buffer. Pruning walks the member matrix, so it is
  // throttled off the per-message path.
  sim::Duration prune_interval = sim::Duration::Millis(25);

  // Membership (off by default; most experiments use static groups).
  bool enable_membership = false;
  sim::Duration heartbeat_interval = sim::Duration::Millis(20);
  sim::Duration failure_timeout = sim::Duration::Millis(100);
};

struct View {
  uint64_t id = 1;
  std::vector<MemberId> members;  // sorted
};

// What the application sees on delivery. The message itself is the single
// immutable GroupData shared by every destination (and by the stability
// buffer) — a delivery adds only the per-receiver facts, so handing a
// message to N applications never deep-copies its ordering metadata.
struct Delivery {
  GroupDataPtr data;
  uint64_t total_seq = 0;  // assigned group-wide sequence; 0 unless kTotal
  sim::TimePoint delivered_at;
  // Time the message spent waiting in this member's delay queue for causal
  // predecessors (the cost of potential/false causality).
  sim::Duration causal_delay;

  const MessageId& id() const { return data->id(); }
  OrderingMode mode() const { return data->mode(); }
  const net::PayloadPtr& payload() const { return data->app_payload(); }
  sim::TimePoint sent_at() const { return data->sent_at(); }
  const VectorClock& vt() const { return data->vt(); }
};

using DeliveryHandler = std::function<void(const Delivery&)>;
using ViewHandler = std::function<void(const View&)>;

struct GroupStats {
  uint64_t sent = 0;
  uint64_t sends_while_stopped = 0;  // dropped: member crashed or not started
  uint64_t causal_delivered = 0;  // passed the vector-clock condition
  uint64_t app_delivered = 0;     // handed to the application
  uint64_t delayed_deliveries = 0;
  sim::Duration total_causal_delay = sim::Duration::Zero();
  uint64_t order_msgs_sent = 0;
  uint64_t ack_msgs_sent = 0;
  uint64_t token_passes = 0;
  uint64_t ordering_header_bytes = 0;  // VT + ack headers on data we sent
  uint64_t piggyback_msgs_carried = 0;
  uint64_t piggyback_bytes = 0;
  uint64_t flushes_completed = 0;
  // Relayed suspicions rejected because we heard the suspect too recently
  // (the fresh-evidence veto in HandleSuspicion).
  uint64_t suspicions_vetoed = 0;
  // Flush rounds a coordinator refused to complete because its survivor set
  // was not a primary partition of the departing view (strict majority, or
  // exactly half holding the lowest member id). The minority side wedges
  // rather than installing a rival view.
  uint64_t flushes_blocked_no_quorum = 0;
  uint64_t flush_control_msgs = 0;
  uint64_t flush_payload_bytes = 0;
  sim::Duration blocked_time = sim::Duration::Zero();
  // Messages from a failed sender abandoned at a view change because no
  // survivor held a copy (atomic-but-not-durable delivery, §2).
  uint64_t messages_dropped_at_view_change = 0;
};

class GroupMember {
 public:
  GroupMember(sim::Simulator* simulator, net::Transport* transport, GroupConfig config,
              MemberId self, std::vector<MemberId> members);
  ~GroupMember();

  GroupMember(const GroupMember&) = delete;
  GroupMember& operator=(const GroupMember&) = delete;

  void SetDeliveryHandler(DeliveryHandler handler) { delivery_handler_ = std::move(handler); }
  void SetViewHandler(ViewHandler handler) { view_handler_ = std::move(handler); }

  // --- application state transfer (crash-recovery rejoin) -------------------
  // With a provider set, the flush coordinator snapshots its application
  // state when admitting a joiner; the joiner's applier installs the snapshot
  // before any post-snapshot message is delivered, and the joiner's delivery
  // cut becomes the coordinator's app-delivered vector (everything past it is
  // re-forwarded through the normal causal path). Snapshot + subsequent
  // deliveries therefore reproduce the group's application state exactly.
  // Without a provider, joiners adopt the group cut and see no history.
  using StateProvider = std::function<net::PayloadPtr()>;
  using StateApplier = std::function<void(const net::PayloadPtr&)>;
  void SetStateProvider(StateProvider fn) { state_provider_ = std::move(fn); }
  void SetStateApplier(StateApplier fn) { state_applier_ = std::move(fn); }

  // Feeds an externally detected failure (e.g. a transport retransmission
  // give-up) into the membership layer, triggering the same flush a
  // heartbeat timeout would. No-op for non-members or without membership.
  void ReportFailure(MemberId suspect);

  // Starts background machinery (ack gossip, heartbeats, token circulation).
  // Must be called once before the first Send.
  void Start();
  // Halts background machinery (e.g. when the owning process crashes).
  void Stop();

  // Joins an existing group through `contact` (any current member). The
  // caller must have been constructed with members = {self} and Start()ed;
  // sends stay blocked until the join view installs. By default the joiner
  // adopts the group's delivery cut and sees no history; with a state
  // provider/applier pair configured (see above) it instead receives an
  // application snapshot plus everything past the snapshot's cut. A crashed
  // member must rejoin under a fresh member id.
  void JoinGroup(MemberId contact);

  // Multicasts to the group. kCausal and kTotal self-deliver per protocol;
  // kUnordered is a plain multicast with no guarantees. During a flush, sends
  // are queued and released when the new view is installed.
  void Send(OrderingMode mode, net::PayloadPtr payload);
  void CausalSend(net::PayloadPtr payload) { Send(OrderingMode::kCausal, std::move(payload)); }
  void TotalSend(net::PayloadPtr payload) { Send(OrderingMode::kTotal, std::move(payload)); }

  MemberId self() const { return self_; }
  const View& view() const { return view_; }
  const GroupStats& stats() const { return stats_; }
  bool flush_in_progress() const { return flushing_; }
  size_t delay_queue_length() const { return pending_.size(); }
  size_t buffered_messages() const { return stability_.buffered_count(); }
  size_t buffered_bytes() const { return stability_.buffered_bytes(); }
  size_t peak_buffered_messages() const { return stability_.peak_buffered_count(); }
  size_t peak_buffered_bytes() const { return stability_.peak_buffered_bytes(); }
  const StabilityTracker& stability() const { return stability_; }

  // Port layout: each group uses a contiguous block so several groups can
  // share a transport.
  static uint32_t DataPort(GroupId g) { return 0x0C000000u + g * 8; }
  static uint32_t OrderPort(GroupId g) { return 0x0C000001u + g * 8; }
  static uint32_t AckPort(GroupId g) { return 0x0C000002u + g * 8; }
  static uint32_t TokenPort(GroupId g) { return 0x0C000003u + g * 8; }
  static uint32_t MembershipPort(GroupId g) { return 0x0C000004u + g * 8; }

 private:
  struct PendingMessage {
    GroupDataPtr data;
    sim::TimePoint arrived_at;
  };

  bool IsSequencer() const;
  MemberId Sequencer() const;

  // --- data path -----------------------------------------------------------
  void OnData(MemberId src, const net::PayloadPtr& payload);
  void IngestData(const GroupDataPtr& data);
  bool CausallyDeliverable(const GroupData& data) const;
  void TryDeliverPending();
  void CausalDeliver(const PendingMessage& pending);
  // Final delivery gate: app delivery respects causality *at the app level*
  // (a cbcast never overtakes an abcast it depends on), and abcasts deliver
  // in global sequence order. Deadlock-free because the total order is a
  // linear extension of happens-before.
  bool AppDeliverable(const GroupData& data) const;
  void TryDeliverApp();
  void DeliverToApp(const GroupDataPtr& data, uint64_t total_seq, sim::Duration causal_delay);
  const VectorClock& DeliveredVector() const { return vd_; }
  void NoteLocalProgress(MemberId sender, uint64_t count);

  // --- total order ---------------------------------------------------------
  void OnOrder(const net::PayloadPtr& payload);
  void ApplyAssignments(const std::vector<std::pair<MessageId, uint64_t>>& assignments);
  void SequencerAssign(const MessageId& id);
  std::vector<std::pair<MessageId, uint64_t>> AssignPendingUnorderedTotals();
  void OnToken(const net::PayloadPtr& payload);
  void PassToken(uint64_t next_total_seq);

  // --- stability -----------------------------------------------------------
  void OnAckVector(MemberId src, const net::PayloadPtr& payload);
  void GossipAcks();

  // --- membership / flush (membership.cc) -----------------------------------
  void OnMembership(MemberId src, const net::PayloadPtr& payload);
  void OnJoinRequest(const JoinRequest& request);
  void SendHeartbeats();
  void CheckFailures();
  void HandleSuspicion(MemberId suspect);
  void InitiateFlush();
  void OnFlushRequest(MemberId src, const FlushRequest& req);
  void OnFlushState(MemberId src, const FlushState& state);
  void MaybeCompleteFlush();
  void OnViewInstall(const ViewInstall& install);
  void SendFlushStateTo(MemberId coordinator, uint64_t new_view_id);
  void FinishBlockedSends();

  void BroadcastReliable(uint32_t port, const net::PayloadPtr& payload);

  sim::Simulator* simulator_;
  net::Transport* transport_;
  GroupConfig config_;
  MemberId self_;
  View view_;
  DeliveryHandler delivery_handler_;
  ViewHandler view_handler_;
  StateProvider state_provider_;
  StateApplier state_applier_;
  GroupStats stats_;
  bool started_ = false;

  // Causal machinery (stage 1: the vector-clock condition).
  uint64_t send_seq_ = 0;
  VectorClock vd_;  // contiguous causally-delivered count per sender
  std::deque<PendingMessage> pending_;
  std::set<MessageId> pending_ids_;  // fast duplicate check for pending_

  // App gate (stage 2): stage-1 output, FIFO per sender, awaiting app-level
  // causal clearance (and, for kTotal, the global sequence turn).
  struct AppPending {
    GroupDataPtr data;
    sim::Duration causal_delay;
  };
  std::deque<AppPending> app_pending_;
  VectorClock ad_;  // app-delivered (or skipped) count per sender

  // Total-order machinery.
  uint64_t next_total_assign_ = 1;    // sequencer/token holder only
  uint64_t next_total_deliver_ = 1;
  std::map<uint64_t, MessageId> order_by_seq_;
  std::map<MessageId, uint64_t> seq_by_id_;
  // Rolling window of recent assignments carried by the token so the next
  // holder cannot double-assign a message whose OrderAssignment broadcast is
  // still in flight. Older assignments have long since been delivered by the
  // reliable broadcast, so a bounded window suffices.
  static constexpr uint64_t kTokenAssignmentWindow = 512;
  std::map<uint64_t, MessageId> recent_assignments_;
  // Causally delivered kTotal messages waiting for their global sequence.
  // Token mode: causally delivered kTotal messages not yet sequenced, in
  // local causal delivery order (a linear extension of happens-before).
  std::deque<MessageId> unassigned_total_;
  bool holding_token_ = false;

  // Stability. Pruning is throttled on the per-message path (it walks the
  // whole buffer and the member matrix); the periodic gossip path prunes
  // unconditionally so buffers always drain at quiescence.
  void MaybePrune();
  StabilityTracker stability_;
  sim::TimePoint last_prune_ = sim::TimePoint::Zero();
  std::unique_ptr<sim::PeriodicTimer> gossip_timer_;

  // Membership.
  std::unique_ptr<sim::PeriodicTimer> heartbeat_timer_;
  std::unique_ptr<sim::PeriodicTimer> failure_check_timer_;
  std::map<MemberId, sim::TimePoint> last_heard_;
  std::set<MemberId> suspected_;
  bool flushing_ = false;
  uint64_t flush_view_id_ = 0;
  uint64_t quorum_blocked_view_ = 0;  // last flush round counted as blocked
  sim::TimePoint flush_started_;
  std::map<MemberId, FlushState> flush_states_;  // coordinator only
  std::set<MemberId> pending_joiners_;           // coordinator only
  bool joining_ = false;                         // joiner side
  std::deque<std::pair<OrderingMode, net::PayloadPtr>> blocked_sends_;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_GROUP_MEMBER_H_
