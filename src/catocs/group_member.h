// GroupMember: one process's endpoint in a CATOCS process group.
//
// Implements the full protocol stack the paper critiques:
//   * causal multicast (cbcast) — Birman–Schiper–Stephenson vector-clock
//     delay queue; a message is delivered only when everything that
//     happens-before it has been delivered;
//   * totally ordered multicast (abcast) — causal delivery plus a single
//     group-wide sequence, assigned either by a fixed sequencer (lowest
//     member id) or by a rotating token;
//   * atomic delivery — every member buffers delivered messages until they
//     are known stable (delivered everywhere), learning progress from ack
//     vectors piggybacked on data and/or periodic gossip;
//   * view-synchronous membership — heartbeat failure detection and a flush
//     protocol that blocks sending, brings survivors to a common delivery
//     cut, and installs a new view with an ordered view-change notification;
//   * the footnote-4 variant — instead of delaying at receivers, carry
//     copies of unstable causal predecessors on each message.
//
// Every cost the paper attributes to CATOCS (delay queues, buffering, header
// bytes, blocked time during flush) is measured and exposed via stats().
//
// Since the pipeline refactor this class is a thin facade: the protocol
// lives in the OrderingLayer stack (causal_layer.h, fifo_layer.h,
// stability_layer.h, membership_layer.h, total_order_layer.h) assembled by
// PipelineBuilder; the facade owns the shared GroupCore, wires transport
// ports to the pipeline dispatcher, and preserves this public API.

#ifndef REPRO_SRC_CATOCS_GROUP_MEMBER_H_
#define REPRO_SRC_CATOCS_GROUP_MEMBER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/catocs/causal_buffer.h"
#include "src/catocs/message.h"
#include "src/catocs/pipeline.h"
#include "src/catocs/types.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace catocs {

class FlowController;
class SenderBatcher;

class GroupMember {
 public:
  GroupMember(sim::Simulator* simulator, net::Transport* transport, GroupConfig config,
              MemberId self, std::vector<MemberId> members);
  ~GroupMember();

  GroupMember(const GroupMember&) = delete;
  GroupMember& operator=(const GroupMember&) = delete;

  // Handlers and state-transfer hooks must be configured before Start();
  // layers snapshot nothing, but installing them mid-protocol would make
  // delivery visibility depend on event timing.
  void SetDeliveryHandler(DeliveryHandler handler);
  void SetViewHandler(ViewHandler handler);

  // --- application state transfer (crash-recovery rejoin) -------------------
  // With a provider set, the flush coordinator snapshots its application
  // state when admitting a joiner; the joiner's applier installs the snapshot
  // before any post-snapshot message is delivered, and the joiner's delivery
  // cut becomes the coordinator's app-delivered vector (everything past it is
  // re-forwarded through the normal causal path). Snapshot + subsequent
  // deliveries therefore reproduce the group's application state exactly.
  // Without a provider, joiners adopt the group cut and see no history.
  using StateProvider = catocs::StateProvider;
  using StateApplier = catocs::StateApplier;
  void SetStateProvider(StateProvider fn);
  void SetStateApplier(StateApplier fn);

  // Feeds an externally detected failure (e.g. a transport retransmission
  // give-up) into the membership layer, triggering the same flush a
  // heartbeat timeout would. No-op for non-members or without membership.
  // A deliberate report (operator eviction, laggard shedding) bypasses the
  // fresh-evidence veto: hearing from the member recently is not contradicting
  // evidence when the point is to evict it while alive.
  void ReportFailure(MemberId suspect, bool deliberate = false);

  // Starts background machinery (ack gossip, heartbeats, token circulation).
  // Must be called once before the first Send.
  void Start();
  // Halts background machinery (e.g. when the owning process crashes).
  void Stop();

  // Joins an existing group through `contact` (any current member). The
  // caller must have been constructed with members = {self} and Start()ed;
  // sends stay blocked until the join view installs. By default the joiner
  // adopts the group's delivery cut and sees no history; with a state
  // provider/applier pair configured (see above) it instead receives an
  // application snapshot plus everything past the snapshot's cut. A crashed
  // member must rejoin under a fresh member id.
  void JoinGroup(MemberId contact);

  // Multicasts to the group. kCausal and kTotal self-deliver per protocol;
  // kUnordered is a plain multicast with no guarantees. During a flush, sends
  // are queued and released when the new view is installed.
  //
  // Returns the id the message was sent under: {self, seq} for ordered
  // sends, {self, 0} for kUnordered (all unordered sends share it), and
  // {0, 0} when nothing went out yet (stopped member, or queued behind a
  // flush — the queued send is re-issued on view install and gets its id
  // then). Callers that feed DeclareDependency keep the returned id.
  MessageId Send(OrderingMode mode, net::PayloadPtr payload) {
    return TrySend(mode, std::move(payload)).id;
  }
  MessageId CausalSend(net::PayloadPtr payload) {
    return Send(OrderingMode::kCausal, std::move(payload));
  }
  MessageId TotalSend(net::PayloadPtr payload) {
    return Send(OrderingMode::kTotal, std::move(payload));
  }

  // Send with an explicit outcome (DESIGN.md §10). Identical side effects to
  // Send; the result distinguishes kSent from the refusal reasons — under
  // flow control an ordered send can come back kBackpressured (retry when
  // the SendReadyHandler fires) or kShed (gone for good, by policy).
  SendResult TrySend(OrderingMode mode, net::PayloadPtr payload);

  // Membership-layer re-issue of a send that was queued behind a completed
  // flush. Exempt from flow-control admission: the message was admitted when
  // first queued, and shedding it here would silently lose an accepted send.
  SendResult ReissueBlockedSend(OrderingMode mode, net::PayloadPtr payload);

  // --- Flow control / bounded resources -------------------------------------
  // Fires when the send window reopens after a kBackpressured refusal (see
  // FlowController::SetSendReadyHandler). No-op without flow control.
  void SetSendReadyHandler(std::function<void()> fn);
  // Remaining send credits; UINT64_MAX when flow control is off.
  uint64_t send_credits() const;
  bool backpressured() const;
  const ResourceBudget& budget() const { return core_.budget; }

  // Provenance (DESIGN.md §8): declares that this member's *next* ordered
  // Send semantically depends on the (previously delivered or sent) message
  // `dep`. Accumulates until a kCausal/kTotal Send attaches the batch to the
  // allocated id; survives a flush-blocked queue round trip. No-op unless a
  // ProvenanceRecorder is attached via GroupConfig — record-only either way.
  void DeclareDependency(const MessageId& dep);

  MemberId self() const { return core_.self; }
  const View& view() const { return core_.view; }
  const GroupStats& stats() const { return core_.stats; }
  // Per-layer hold attribution; all-zero unless GroupConfig::observability.
  const PipelineStats& pipeline_stats() const { return core_.pipeline_stats; }
  bool flush_in_progress() const;
  size_t delay_queue_length() const;
  size_t buffered_messages() const;
  size_t buffered_bytes() const;
  size_t peak_buffered_messages() const;
  size_t peak_buffered_bytes() const;
  const CausalBufferStrategy& stability() const;

  // Port layout: each group uses a contiguous block so several groups can
  // share a transport. (The formulas live in GroupPorts; these forward.)
  static uint32_t DataPort(GroupId g) { return GroupPorts::Data(g); }
  static uint32_t OrderPort(GroupId g) { return GroupPorts::Order(g); }
  static uint32_t AckPort(GroupId g) { return GroupPorts::Ack(g); }
  static uint32_t TokenPort(GroupId g) { return GroupPorts::Token(g); }
  static uint32_t MembershipPort(GroupId g) { return GroupPorts::Membership(g); }

 private:
  SendResult SendInternal(OrderingMode mode, net::PayloadPtr payload, bool admission_exempt);

  GroupCore core_;
  Pipeline pipeline_;
  // Present only when config.batching > 1 (see sender_batch.h); the
  // unbatched send path is untouched.
  std::unique_ptr<SenderBatcher> batcher_;
  // Present only when config.send_window > 0 or config.budget is bounded
  // (see flow_control.h); same null-by-default discipline as the batcher.
  std::unique_ptr<FlowController> flow_;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_GROUP_MEMBER_H_
