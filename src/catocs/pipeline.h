// The ordering-layer stack. A Pipeline owns the layers in stack order and
// drives the uniform hooks; the PipelineBuilder assembles the default CATOCS
// stack (or a custom one, for tests and future protocol variants).
//
// Stack order matters only where the hooks have observable side effects in
// sequence: OnStart creates timers (their creation order is part of the
// deterministic replay), OnSend stamps header sections, OnStop tears down in
// the same order Stop always did. Receive dispatch is port-keyed, so layer
// order is irrelevant there.

#ifndef REPRO_SRC_CATOCS_PIPELINE_H_
#define REPRO_SRC_CATOCS_PIPELINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/catocs/layer.h"

namespace catocs {

class Pipeline {
 public:
  void OnStart() {
    for (auto& layer : layers_) {
      layer->OnStart();
    }
  }
  void OnStop() {
    for (auto& layer : layers_) {
      layer->OnStop();
    }
  }
  void OnSend(GroupData& data) {
    for (auto& layer : layers_) {
      layer->OnSend(data);
    }
  }
  // Offer an incoming payload to each layer until one claims the port.
  void Dispatch(MemberId src, uint32_t port, const net::PayloadPtr& payload) {
    for (auto& layer : layers_) {
      if (layer->OnReceive(src, port, payload)) {
        return;
      }
    }
  }
  void TryDeliver() {
    for (auto& layer : layers_) {
      layer->TryDeliver();
    }
  }
  void NotifyViewChange(const View& view) {
    for (auto& layer : layers_) {
      layer->OnViewChange(view);
    }
  }

  const std::vector<std::unique_ptr<OrderingLayer>>& layers() const { return layers_; }

 private:
  friend class PipelineBuilder;
  std::vector<std::unique_ptr<OrderingLayer>> layers_;
};

class PipelineBuilder {
 public:
  explicit PipelineBuilder(GroupCore* core) : core_(core) {}

  PipelineBuilder& Add(std::unique_ptr<OrderingLayer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  // The standard CATOCS stack. Order reproduces the monolith's timer
  // creation sequence (ack gossip, heartbeat, failure check, token seed) and
  // its header stamping order (vector timestamp, then acks/piggyback).
  PipelineBuilder& AddDefaultStack();

  Pipeline Build() {
    Pipeline pipeline;
    pipeline.layers_ = std::move(layers_);
    return pipeline;
  }

 private:
  GroupCore* core_;
  std::vector<std::unique_ptr<OrderingLayer>> layers_;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_PIPELINE_H_
