// GroupFabric: convenience harness that stands up a complete CATOCS group —
// network, per-node transports, and GroupMembers — plus delivery recording
// and the ordering-invariant checkers used by tests and benches.

#ifndef REPRO_SRC_CATOCS_GROUP_H_
#define REPRO_SRC_CATOCS_GROUP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/catocs/group_member.h"
#include "src/net/network.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace catocs {

struct FabricConfig {
  uint32_t num_members = 3;
  GroupConfig group;
  net::NetworkConfig network;
  net::TransportConfig transport;
  // Default uniform latency when no explicit model is given.
  sim::Duration latency_lo = sim::Duration::Millis(1);
  sim::Duration latency_hi = sim::Duration::Millis(10);
};

class GroupFabric {
 public:
  GroupFabric(sim::Simulator* simulator, FabricConfig config);
  GroupFabric(sim::Simulator* simulator, FabricConfig config,
              std::unique_ptr<net::LatencyModel> latency);
  ~GroupFabric();

  GroupFabric(const GroupFabric&) = delete;
  GroupFabric& operator=(const GroupFabric&) = delete;

  size_t size() const { return members_.size(); }
  // Member ids are 1..N (index + 1).
  static MemberId IdOf(size_t index) { return static_cast<MemberId>(index + 1); }
  GroupMember& member(size_t index) { return *members_[index]; }
  net::Transport& transport(size_t index) { return *transports_[index]; }
  net::Network& network() { return *network_; }
  sim::Simulator& simulator() { return *simulator_; }

  void StartAll();

  // Crash-stop: the node drops off the network and its protocol machinery
  // halts. A crashed member can come back by joining under a fresh member id
  // (GroupMember::JoinGroup), optionally with application state transfer via
  // SetStateProvider/SetStateApplier — the chaos rig in src/fault/ exercises
  // exactly that cycle.
  void CrashMember(size_t index);

  // A delivery as observed at a particular member.
  struct Record {
    MemberId at;
    Delivery delivery;
  };

  // Installs recording delivery handlers on every member. Call before
  // running; clears any handler set earlier.
  void RecordDeliveries();
  const std::vector<Record>& records() const { return records_; }
  // Delivery order (message ids) observed at one member.
  std::vector<MessageId> DeliveryOrderAt(size_t index) const;

 private:
  sim::Simulator* simulator_;
  FabricConfig config_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<net::Transport>> transports_;
  std::vector<std::unique_ptr<GroupMember>> members_;
  std::vector<Record> records_;
};

// --- ordering invariants -------------------------------------------------

// Causal safety: at every member, if the vector time of delivered message a
// happens-before that of b, then a was delivered before b. Returns an empty
// string on success, else a description of the first violation.
std::string CheckCausalDeliveryInvariant(const std::vector<GroupFabric::Record>& records);

// Same invariant, checked in O(records · clock entries) instead of O(records²)
// — the form the N=1k–10k scale sweeps can afford. Exact, not a relaxation:
// per member it keeps a watermark H = pointwise max over delivered timestamps;
// delivering (q, s) while H[q] >= s means some already-delivered message
// counted (q, s) in its causal past — precisely a causal inversion — and
// H[q] < s for all prior deliveries means none did.
std::string CheckCausalOrderLinear(const std::vector<GroupFabric::Record>& records);

// Total-order agreement: the sequence of kTotal deliveries (by total_seq) is
// a prefix-consistent identical sequence at every member. Empty string on
// success.
std::string CheckTotalOrderInvariant(const std::vector<GroupFabric::Record>& records);

// FIFO per sender: messages from one sender are delivered everywhere in send
// (seq) order. Empty string on success.
std::string CheckFifoInvariant(const std::vector<GroupFabric::Record>& records);

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_GROUP_H_
