// The app-side delivery gate (stage 2): stage-1 (causal) output, FIFO per
// sender, awaiting app-level causal clearance — a cbcast never overtakes an
// abcast it depends on — and, for kTotal, the global sequence turn.
// Deadlock-free because the total order is a linear extension of
// happens-before. This is also where every delivery is finally handed to the
// application.

#ifndef REPRO_SRC_CATOCS_FIFO_LAYER_H_
#define REPRO_SRC_CATOCS_FIFO_LAYER_H_

#include <cstdint>
#include <deque>

#include "src/catocs/layer.h"
#include "src/catocs/vector_clock.h"

namespace catocs {

class FifoLayer : public OrderingLayer {
 public:
  explicit FifoLayer(GroupCore* core) : OrderingLayer(core) { core->fifo = this; }

  const char* name() const override { return "fifo"; }

  void TryDeliver() override { TryDeliverApp(); }

  // A causally delivered message enters the app gate.
  void Enqueue(const GroupDataPtr& data, sim::Duration causal_delay);

  void TryDeliverApp();

  // Unordered bypass: straight to the application, no gating, no total seq.
  void DeliverDirect(const GroupDataPtr& data);

  // App-delivered (or skipped) count per sender.
  const VectorClock& app_delivered() const { return ad_; }

  // Joiner: adopt the group's delivery cut as the app-level floor too.
  void AdoptCut(const VectorClock& cut) { ad_.Merge(cut); }

  struct AppPending {
    GroupDataPtr data;
    sim::Duration causal_delay;
    // Observability bookkeeping (meaningful only when recorded): when the
    // message entered the gate and which condition was blocking it then.
    sim::TimePoint entered_at;
    HoldReason gate = HoldReason::kFifoGap;
  };
  // Causally delivered messages not yet handed to the app, in causal
  // delivery order (the membership and total-order layers walk this for
  // state transfer and for sequencing unordered kTotal backlogs).
  const std::deque<AppPending>& pending() const { return app_pending_; }

 private:
  // Final delivery gate: everything that happens-before this message must
  // already be visible to the application (or have been skipped at a view
  // change). Per-sender order is enforced by the FIFO scan in
  // TryDeliverApp; the gate never waits on the message's own sender entry.
  bool AppDeliverable(const GroupData& data) const;
  void DeliverToApp(const GroupDataPtr& data, uint64_t total_seq, sim::Duration causal_delay);

  std::deque<AppPending> app_pending_;
  VectorClock ad_;  // app-delivered (or skipped) count per sender
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_FIFO_LAYER_H_
