// Sender-side flow control and overload policy (DESIGN.md §10).
//
// The credit formula ties a sender's admission to group-wide stability:
//
//   credits = send_window − (send_seq − stable floor for self)
//
// where the stable floor for self is the number of this member's own
// messages every current member has contiguously delivered. The slowest live
// receiver therefore throttles the sender — exactly the §2.3 buffering
// quantity, bounded at the source instead of measured after the explosion.
// A bounded ResourceBudget adds a second admission gate: no new ordered send
// while the budget sits at critical pressure.
//
// What happens on refusal is the GroupConfig::overload_policy: throttle
// (refuse with kBackpressured + deterministic retry wakeups), shed-new
// (drop the new message, counted), or evict-laggard (throttle, but hand a
// persistently slowest receiver to the membership layer's suspicion path).
//
// Constructed by GroupMember only when config.send_window > 0 or the budget
// is bounded; core->flow stays null otherwise, so the default send path pays
// one pointer test.

#ifndef REPRO_SRC_CATOCS_FLOW_CONTROL_H_
#define REPRO_SRC_CATOCS_FLOW_CONTROL_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/catocs/layer.h"

namespace catocs {

class FlowController {
 public:
  explicit FlowController(GroupCore* core);
  ~FlowController();

  FlowController(const FlowController&) = delete;
  FlowController& operator=(const FlowController&) = delete;

  // Admission check for one ordered send. kSent admits; kShed and
  // kBackpressured refuse per the configured policy (kBackpressured also
  // arms the retry timer).
  SendStatus Admit();

  // Stability progressed (ack observed, causal delivery, view change): if a
  // backpressured sender can proceed again, reopen immediately instead of
  // waiting for the next retry tick.
  void OnProgress();

  // Member stopped: cancel the retry timer and forget the stall state.
  void OnStop();

  // Invoked (synchronously, from a retry tick or OnProgress) when the window
  // reopens after a kBackpressured refusal. Applications re-issue their
  // throttled sends from here.
  using SendReadyHandler = std::function<void()>;
  void SetSendReadyHandler(SendReadyHandler fn) { ready_ = std::move(fn); }

  // Remaining send credits; UINT64_MAX when window flow control is off.
  uint64_t credits() const;
  bool backpressured() const { return waiting_; }

 private:
  bool Admissible() const;
  void RetryTick();
  void Reopen();

  GroupCore* core_;
  std::unique_ptr<sim::PeriodicTimer> retry_timer_;
  SendReadyHandler ready_;
  bool waiting_ = false;
  // Evict-laggard bookkeeping: the slowest receiver seen while stalled and
  // for how many consecutive retry ticks it has stayed slowest.
  MemberId last_laggard_ = 0;
  uint32_t stalled_ticks_ = 0;
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_FLOW_CONTROL_H_
