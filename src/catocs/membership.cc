// View-synchronous membership: heartbeat failure detection and the flush
// protocol. On suspicion, the surviving member with the lowest id
// coordinates: all survivors stop sending, contribute their unstable
// messages and delivery state, the coordinator computes a common delivery
// cut and redistributes whatever any survivor is missing, and finally a new
// view is installed consistently everywhere. The cost of all of this —
// control messages, re-forwarded payload bytes, and the time sends stay
// blocked — is what experiment E10 measures.

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/catocs/group_member.h"

namespace catocs {

void GroupMember::OnMembership(MemberId src, const net::PayloadPtr& payload) {
  if (const auto* hb = net::PayloadCast<Heartbeat>(payload)) {
    if (hb->group() == config_.group_id) {
      last_heard_[src] = simulator_->now();
    }
    return;
  }
  if (const auto* join = net::PayloadCast<JoinRequest>(payload)) {
    if (join->group() == config_.group_id) {
      OnJoinRequest(*join);
    }
    return;
  }
  if (const auto* suspect = net::PayloadCast<SuspectNotice>(payload)) {
    if (suspect->group() == config_.group_id) {
      HandleSuspicion(suspect->suspect());
    }
    return;
  }
  if (const auto* req = net::PayloadCast<FlushRequest>(payload)) {
    if (req->group() == config_.group_id) {
      OnFlushRequest(src, *req);
    }
    return;
  }
  if (const auto* state = net::PayloadCast<FlushState>(payload)) {
    if (state->group() == config_.group_id) {
      OnFlushState(src, *state);
    }
    return;
  }
  if (const auto* install = net::PayloadCast<ViewInstall>(payload)) {
    if (install->group() == config_.group_id) {
      OnViewInstall(*install);
    }
    return;
  }
}

void GroupMember::JoinGroup(MemberId contact) {
  // Block application sends until the join view installs.
  joining_ = true;
  flushing_ = true;
  flush_started_ = simulator_->now();
  transport_->SendReliable(contact, MembershipPort(config_.group_id),
                           std::make_shared<JoinRequest>(config_.group_id, self_));
}

void GroupMember::OnJoinRequest(const JoinRequest& request) {
  if (std::binary_search(view_.members.begin(), view_.members.end(), request.joiner())) {
    return;  // already a member
  }
  // Route to the coordinator (lowest live member); the coordinator folds the
  // join into a flush among the *current* members.
  MemberId coordinator = view_.members.front();
  for (MemberId member : view_.members) {
    if (!suspected_.count(member)) {
      coordinator = member;
      break;
    }
  }
  if (coordinator != self_) {
    ++stats_.flush_control_msgs;
    transport_->SendReliable(coordinator, MembershipPort(config_.group_id),
                             std::make_shared<JoinRequest>(config_.group_id, request.joiner()));
    return;
  }
  if (pending_joiners_.insert(request.joiner()).second) {
    InitiateFlush();
  }
}

void GroupMember::SendHeartbeats() {
  auto hb = std::make_shared<Heartbeat>(config_.group_id, view_.id);
  for (MemberId member : view_.members) {
    if (member != self_) {
      transport_->SendUnreliable(member, MembershipPort(config_.group_id), hb);
    }
  }
}

void GroupMember::CheckFailures() {
  const sim::TimePoint now = simulator_->now();
  for (MemberId member : view_.members) {
    if (member == self_ || suspected_.count(member)) {
      continue;
    }
    auto it = last_heard_.find(member);
    if (it == last_heard_.end()) {
      // Never heard from it; give it a full timeout from when we started
      // checking by seeding the map lazily.
      last_heard_[member] = now;
      continue;
    }
    if (now - it->second > config_.failure_timeout) {
      HandleSuspicion(member);
    }
  }
}

void GroupMember::HandleSuspicion(MemberId suspect) {
  if (suspect == self_ ||
      !std::binary_search(view_.members.begin(), view_.members.end(), suspect)) {
    return;
  }
  if (!suspected_.insert(suspect).second) {
    return;  // already known
  }
  // Survivor with the lowest id coordinates the flush.
  MemberId coordinator = self_;
  for (MemberId member : view_.members) {
    if (!suspected_.count(member)) {
      coordinator = member;
      break;
    }
  }
  if (coordinator == self_) {
    InitiateFlush();
  } else {
    ++stats_.flush_control_msgs;
    transport_->SendReliable(coordinator, MembershipPort(config_.group_id),
                             std::make_shared<SuspectNotice>(config_.group_id, suspect));
    // Also stop sending application traffic; the flush request will arrive.
  }
}

void GroupMember::InitiateFlush() {
  const uint64_t new_view_id = std::max(view_.id, flush_view_id_) + 1;
  flush_view_id_ = new_view_id;
  if (!flushing_) {
    flushing_ = true;
    flush_started_ = simulator_->now();
  }
  flush_states_.clear();

  std::vector<MemberId> survivors;
  for (MemberId member : view_.members) {
    if (!suspected_.count(member)) {
      survivors.push_back(member);
    }
  }
  auto req = std::make_shared<FlushRequest>(config_.group_id, new_view_id, survivors);
  for (MemberId member : survivors) {
    if (member != self_) {
      ++stats_.flush_control_msgs;
      transport_->SendReliable(member, MembershipPort(config_.group_id), req);
    }
  }
  // Contribute our own state directly.
  std::vector<std::pair<MessageId, uint64_t>> assignments(seq_by_id_.begin(), seq_by_id_.end());
  FlushState own(config_.group_id, new_view_id, vd_, stability_.UnstableMessages(),
                 std::move(assignments), next_total_deliver_);
  OnFlushState(self_, own);
}

void GroupMember::OnFlushRequest(MemberId src, const FlushRequest& req) {
  if (req.new_view_id() <= view_.id) {
    return;  // stale
  }
  flush_view_id_ = std::max(flush_view_id_, req.new_view_id());
  if (!flushing_) {
    flushing_ = true;
    flush_started_ = simulator_->now();
  }
  // Adopt the coordinator's suspicion set.
  for (MemberId member : view_.members) {
    if (std::find(req.survivors().begin(), req.survivors().end(), member) ==
        req.survivors().end()) {
      suspected_.insert(member);
    }
  }
  SendFlushStateTo(src, req.new_view_id());
}

void GroupMember::SendFlushStateTo(MemberId coordinator, uint64_t new_view_id) {
  std::vector<std::pair<MessageId, uint64_t>> assignments(seq_by_id_.begin(), seq_by_id_.end());
  auto state = std::make_shared<FlushState>(config_.group_id, new_view_id, vd_,
                                            stability_.UnstableMessages(), std::move(assignments),
                                            next_total_deliver_);
  ++stats_.flush_control_msgs;
  stats_.flush_payload_bytes += state->SizeBytes();
  transport_->SendReliable(coordinator, MembershipPort(config_.group_id), state);
}

void GroupMember::OnFlushState(MemberId src, const FlushState& state) {
  if (state.new_view_id() != flush_view_id_ || !flushing_) {
    return;  // belongs to an abandoned round
  }
  flush_states_.insert_or_assign(src, state);
  MaybeCompleteFlush();
}

void GroupMember::MaybeCompleteFlush() {
  // Only the coordinator aggregates.
  std::vector<MemberId> survivors;
  for (MemberId member : view_.members) {
    if (!suspected_.count(member)) {
      survivors.push_back(member);
    }
  }
  if (survivors.empty() || survivors.front() != self_) {
    return;
  }
  for (MemberId member : survivors) {
    if (!flush_states_.count(member)) {
      return;  // still waiting
    }
  }

  // 1. Union of all unstable messages any survivor holds.
  std::map<MessageId, GroupDataPtr> message_union;
  for (const auto& [member, state] : flush_states_) {
    for (const auto& msg : state.unstable()) {
      message_union.emplace(msg->id(), msg);
    }
  }

  // 2. The common delivery cut: per sender, the furthest any survivor got.
  //    Everything at or below the cut is either already delivered at a given
  //    survivor or present in the union (if a survivor delivered it and it
  //    was pruned as stable, then by definition of stability everyone
  //    delivered it already).
  VectorClock final_cut;
  for (const auto& [member, state] : flush_states_) {
    final_cut.Merge(state.delivered());
  }

  // 3. Consolidate total-order assignments. Assignments below `base` are
  //    fixed (some survivor may have delivered at that sequence). Assignments
  //    at or above `base` were issued but delivered nowhere; renumber them
  //    densely so a sequence assigned only by the failed sequencer cannot
  //    leave a permanent gap.
  uint64_t base = 1;
  for (const auto& [member, state] : flush_states_) {
    base = std::max(base, state.next_total_deliver());
  }
  std::map<MessageId, uint64_t> merged;
  std::map<uint64_t, MessageId> above_base;
  for (const auto& [member, state] : flush_states_) {
    for (const auto& [id, seq] : state.known_assignments()) {
      if (seq < base) {
        merged.emplace(id, seq);
      } else {
        above_base.emplace(seq, id);
      }
    }
  }
  uint64_t next_seq = base;
  for (const auto& [old_seq, id] : above_base) {
    if (!merged.count(id)) {
      merged.emplace(id, next_seq++);
    }
  }
  std::vector<std::pair<MessageId, uint64_t>> merged_vec(merged.begin(), merged.end());

  // 4. Per-survivor ViewInstall with exactly the messages it is missing.
  //    The self-install mutates flush state, so it runs last. Joiners become
  //    members of the new view; they adopt the delivery cut rather than
  //    receiving history.
  const uint64_t new_view_id = flush_view_id_;
  std::vector<MemberId> new_members = survivors;
  for (MemberId joiner : pending_joiners_) {
    new_members.push_back(joiner);
  }
  std::sort(new_members.begin(), new_members.end());
  for (MemberId joiner : pending_joiners_) {
    auto install = std::make_shared<ViewInstall>(config_.group_id, new_view_id, new_members,
                                                 std::vector<GroupDataPtr>{}, merged_vec,
                                                 next_seq, final_cut);
    ++stats_.flush_control_msgs;
    stats_.flush_payload_bytes += install->SizeBytes();
    transport_->SendReliable(joiner, MembershipPort(config_.group_id), install);
  }
  pending_joiners_.clear();
  std::shared_ptr<ViewInstall> own_install;
  for (MemberId member : survivors) {
    const FlushState& state = flush_states_.at(member);
    std::vector<GroupDataPtr> missing;
    for (const auto& [id, msg] : message_union) {
      if (id.seq > state.delivered().Get(id.sender)) {
        missing.push_back(msg);
      }
    }
    auto install = std::make_shared<ViewInstall>(config_.group_id, new_view_id, new_members,
                                                 std::move(missing), merged_vec, next_seq,
                                                 final_cut);
    if (member == self_) {
      own_install = std::move(install);
    } else {
      ++stats_.flush_control_msgs;
      stats_.flush_payload_bytes += install->SizeBytes();
      transport_->SendReliable(member, MembershipPort(config_.group_id), install);
    }
  }
  if (own_install) {
    OnViewInstall(*own_install);
  }
}

void GroupMember::OnViewInstall(const ViewInstall& install) {
  if (install.view_id() <= view_.id) {
    return;
  }

  // Ingest redistributed messages through the normal causal path.
  for (const auto& msg : install.missing()) {
    IngestData(msg);
  }

  // A joiner starts at the group's delivery cut: everything before it is
  // history it never sees (by design); everything after flows normally.
  if (joining_) {
    vd_.Merge(install.final_cut());
    ad_.Merge(install.final_cut());
    next_total_deliver_ = std::max(next_total_deliver_, install.next_total_seq());
    joining_ = false;
  }

  // Close gaps left by failed senders: messages beyond what any survivor
  // holds are lost for good. Skipping their sequence numbers is the protocol
  // admitting non-durability.
  for (const auto& [sender, cut] : install.final_cut().entries()) {
    if (std::find(install.members().begin(), install.members().end(), sender) !=
        install.members().end()) {
      continue;  // live senders have reliable FIFO channels; no gaps
    }
    const uint64_t have = vd_.Get(sender);
    if (have < cut) {
      stats_.messages_dropped_at_view_change += cut - have;
      vd_.Set(sender, cut);
    }
    // The app gate must also treat the skipped messages as "seen", or
    // anything causally dependent on them would block forever. Messages from
    // the dead sender still sitting in app_pending_ are unaffected: the gate
    // never compares a message against its own sender's entry.
    ad_.RaiseTo(sender, cut);
    // Pending messages from the failed sender beyond the cut can never be
    // delivered; drop them.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->data->id().sender == sender && it->data->id().seq > cut) {
        ++stats_.messages_dropped_at_view_change;
        pending_ids_.erase(it->data->id());
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  TryDeliverPending();

  // Adopt the consolidated total order *authoritatively*. The coordinator
  // merged every survivor's known assignments (renumbering those at or above
  // the delivery base to close gaps left by a dead sequencer), so the merged
  // map supersedes anything we hold — including a stale in-flight assignment
  // from the old sequencer that the renumbering moved.
  seq_by_id_.clear();
  order_by_seq_.clear();
  recent_assignments_.clear();
  ApplyAssignments(install.assignments());
  next_total_assign_ = std::max(next_total_assign_, install.next_total_seq());

  // Install the view.
  view_.id = install.view_id();
  view_.members = install.members();
  std::sort(view_.members.begin(), view_.members.end());
  stability_.SetMembers(view_.members);
  stability_.Prune();
  for (MemberId gone : suspected_) {
    last_heard_.erase(gone);
  }
  suspected_.clear();
  flush_states_.clear();

  // The new sequencer orders any held messages that lost their assignment
  // with the old sequencer, in its local causal delivery order.
  if (config_.total_order_mode == TotalOrderMode::kSequencer && IsSequencer()) {
    std::vector<std::pair<MessageId, uint64_t>> batch = AssignPendingUnorderedTotals();
    if (!batch.empty()) {
      auto order = std::make_shared<OrderAssignment>(config_.group_id, batch);
      ++stats_.order_msgs_sent;
      BroadcastReliable(OrderPort(config_.group_id), order);
      ApplyAssignments(batch);
    }
  }
  // Token regeneration: the lowest survivor re-seeds the token.
  if (config_.total_order_mode == TotalOrderMode::kToken && IsSequencer() && started_) {
    holding_token_ = true;
    simulator_->ScheduleAfter(config_.token_pass_delay, [this] {
      if (holding_token_ && started_) {
        PassToken(next_total_assign_);
      }
    });
  }
  TryDeliverApp();

  // Unblock.
  if (flushing_) {
    flushing_ = false;
    ++stats_.flushes_completed;
    stats_.blocked_time += simulator_->now() - flush_started_;
  }
  if (view_handler_) {
    view_handler_(view_);
  }
  FinishBlockedSends();
}

void GroupMember::FinishBlockedSends() {
  while (!blocked_sends_.empty() && !flushing_) {
    auto [mode, payload] = std::move(blocked_sends_.front());
    blocked_sends_.pop_front();
    Send(mode, std::move(payload));
  }
}

}  // namespace catocs
