// View-synchronous membership: heartbeat failure detection and the flush
// protocol. On suspicion, the surviving member with the lowest id
// coordinates: all survivors stop sending, contribute their unstable
// messages and delivery state, the coordinator computes a common delivery
// cut and redistributes whatever any survivor is missing, and finally a new
// view is installed consistently everywhere. The cost of all of this —
// control messages, re-forwarded payload bytes, and the time sends stay
// blocked — is what experiment E10 measures.

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/catocs/group_member.h"

namespace catocs {

void GroupMember::OnMembership(MemberId src, const net::PayloadPtr& payload) {
  if (const auto* hb = net::PayloadCast<Heartbeat>(payload)) {
    if (hb->group() == config_.group_id) {
      last_heard_[src] = simulator_->now();
    }
    return;
  }
  if (const auto* join = net::PayloadCast<JoinRequest>(payload)) {
    if (join->group() == config_.group_id) {
      OnJoinRequest(*join);
    }
    return;
  }
  if (const auto* suspect = net::PayloadCast<SuspectNotice>(payload)) {
    if (suspect->group() == config_.group_id) {
      HandleSuspicion(suspect->suspect());
    }
    return;
  }
  if (const auto* req = net::PayloadCast<FlushRequest>(payload)) {
    if (req->group() == config_.group_id) {
      OnFlushRequest(src, *req);
    }
    return;
  }
  if (const auto* state = net::PayloadCast<FlushState>(payload)) {
    if (state->group() == config_.group_id) {
      OnFlushState(src, *state);
    }
    return;
  }
  if (const auto* install = net::PayloadCast<ViewInstall>(payload)) {
    if (install->group() == config_.group_id) {
      OnViewInstall(*install);
    }
    return;
  }
}

void GroupMember::JoinGroup(MemberId contact) {
  // Block application sends until the join view installs.
  joining_ = true;
  flushing_ = true;
  flush_started_ = simulator_->now();
  transport_->SendReliable(contact, MembershipPort(config_.group_id),
                           std::make_shared<JoinRequest>(config_.group_id, self_));
}

void GroupMember::OnJoinRequest(const JoinRequest& request) {
  if (std::binary_search(view_.members.begin(), view_.members.end(), request.joiner())) {
    return;  // already a member
  }
  // Route to the coordinator (lowest live member); the coordinator folds the
  // join into a flush among the *current* members.
  MemberId coordinator = view_.members.front();
  for (MemberId member : view_.members) {
    if (!suspected_.count(member)) {
      coordinator = member;
      break;
    }
  }
  if (coordinator != self_) {
    ++stats_.flush_control_msgs;
    transport_->SendReliable(coordinator, MembershipPort(config_.group_id),
                             std::make_shared<JoinRequest>(config_.group_id, request.joiner()));
    return;
  }
  if (pending_joiners_.insert(request.joiner()).second) {
    InitiateFlush();
  }
}

void GroupMember::SendHeartbeats() {
  auto hb = std::make_shared<Heartbeat>(config_.group_id, view_.id);
  for (MemberId member : view_.members) {
    if (member != self_) {
      transport_->SendUnreliable(member, MembershipPort(config_.group_id), hb);
    }
  }
}

void GroupMember::CheckFailures() {
  const sim::TimePoint now = simulator_->now();
  for (MemberId member : view_.members) {
    if (member == self_ || suspected_.count(member)) {
      continue;
    }
    auto it = last_heard_.find(member);
    if (it == last_heard_.end()) {
      // Never heard from it; give it a full timeout from when we started
      // checking by seeding the map lazily.
      last_heard_[member] = now;
      continue;
    }
    if (now - it->second > config_.failure_timeout) {
      HandleSuspicion(member);
    }
  }
}

void GroupMember::ReportFailure(MemberId suspect) {
  if (!config_.enable_membership || !started_ || joining_) {
    return;
  }
  HandleSuspicion(suspect);
}

void GroupMember::HandleSuspicion(MemberId suspect) {
  if (suspect == self_ ||
      !std::binary_search(view_.members.begin(), view_.members.end(), suspect)) {
    return;
  }
  // Fresh-evidence veto: a relayed suspicion (SuspectNotice hearsay, or a
  // transport give-up) is rejected while our own ears contradict it — we
  // heard the suspect within half a failure timeout. Local timeout-driven
  // suspicion is unaffected (CheckFailures only fires after a full silent
  // timeout). Without this, one member's lossy inbound path can evict a
  // member everyone else still hears, and the evicted-but-live member then
  // installs a rival view — a split brain from a single bad link.
  auto heard = last_heard_.find(suspect);
  if (heard != last_heard_.end() &&
      simulator_->now() - heard->second < config_.failure_timeout / 2) {
    ++stats_.suspicions_vetoed;
    return;
  }
  if (!suspected_.insert(suspect).second) {
    return;  // already known
  }
  // Survivor with the lowest id coordinates the flush.
  MemberId coordinator = self_;
  for (MemberId member : view_.members) {
    if (!suspected_.count(member)) {
      coordinator = member;
      break;
    }
  }
  if (coordinator == self_) {
    InitiateFlush();
  } else {
    ++stats_.flush_control_msgs;
    transport_->SendReliable(coordinator, MembershipPort(config_.group_id),
                             std::make_shared<SuspectNotice>(config_.group_id, suspect));
    // Also stop sending application traffic; the flush request will arrive.
  }
}

void GroupMember::InitiateFlush() {
  const uint64_t new_view_id = std::max(view_.id, flush_view_id_) + 1;
  flush_view_id_ = new_view_id;
  if (!flushing_) {
    flushing_ = true;
    flush_started_ = simulator_->now();
  }
  flush_states_.clear();

  std::vector<MemberId> survivors;
  for (MemberId member : view_.members) {
    if (!suspected_.count(member)) {
      survivors.push_back(member);
    }
  }
  auto req = std::make_shared<FlushRequest>(config_.group_id, new_view_id, survivors);
  for (MemberId member : survivors) {
    if (member != self_) {
      ++stats_.flush_control_msgs;
      transport_->SendReliable(member, MembershipPort(config_.group_id), req);
    }
  }
  // Contribute our own state directly.
  std::vector<std::pair<MessageId, uint64_t>> assignments(seq_by_id_.begin(), seq_by_id_.end());
  FlushState own(config_.group_id, new_view_id, vd_, stability_.UnstableMessages(),
                 std::move(assignments), next_total_deliver_);
  OnFlushState(self_, own);
}

void GroupMember::OnFlushRequest(MemberId src, const FlushRequest& req) {
  if (req.new_view_id() <= view_.id) {
    return;  // stale
  }
  flush_view_id_ = std::max(flush_view_id_, req.new_view_id());
  if (!flushing_) {
    flushing_ = true;
    flush_started_ = simulator_->now();
  }
  // Adopt the coordinator's suspicion set.
  for (MemberId member : view_.members) {
    if (std::find(req.survivors().begin(), req.survivors().end(), member) ==
        req.survivors().end()) {
      suspected_.insert(member);
    }
  }
  SendFlushStateTo(src, req.new_view_id());
}

void GroupMember::SendFlushStateTo(MemberId coordinator, uint64_t new_view_id) {
  std::vector<std::pair<MessageId, uint64_t>> assignments(seq_by_id_.begin(), seq_by_id_.end());
  auto state = std::make_shared<FlushState>(config_.group_id, new_view_id, vd_,
                                            stability_.UnstableMessages(), std::move(assignments),
                                            next_total_deliver_);
  ++stats_.flush_control_msgs;
  stats_.flush_payload_bytes += state->SizeBytes();
  transport_->SendReliable(coordinator, MembershipPort(config_.group_id), state);
}

void GroupMember::OnFlushState(MemberId src, const FlushState& state) {
  if (state.new_view_id() != flush_view_id_ || !flushing_) {
    return;  // belongs to an abandoned round
  }
  flush_states_.insert_or_assign(src, state);
  MaybeCompleteFlush();
}

void GroupMember::MaybeCompleteFlush() {
  // Only the coordinator aggregates.
  std::vector<MemberId> survivors;
  for (MemberId member : view_.members) {
    if (!suspected_.count(member)) {
      survivors.push_back(member);
    }
  }
  if (survivors.empty() || survivors.front() != self_) {
    return;
  }

  // Primary-partition rule for suspicion-driven flushes: only a side holding
  // a strict majority of the departing view — or exactly half of it AND the
  // lowest member id as a deterministic tie-break — may install the next
  // view. The other side wedges in the flush instead of installing a rival
  // view and running as a split brain: an evicted-but-live member (false
  // suspicion under lossy links) stops, it does not secede. Pure join/leave
  // flushes (no suspects) carry the whole view and skip the check.
  if (!suspected_.empty()) {
    const size_t old_size = view_.members.size();
    const bool majority = survivors.size() * 2 > old_size;
    const bool half_with_anchor =
        survivors.size() * 2 == old_size &&
        std::find(survivors.begin(), survivors.end(), view_.members.front()) != survivors.end();
    if (!majority && !half_with_anchor) {
      if (flush_view_id_ != quorum_blocked_view_) {
        quorum_blocked_view_ = flush_view_id_;
        ++stats_.flushes_blocked_no_quorum;
      }
      return;
    }
  }

  for (MemberId member : survivors) {
    if (!flush_states_.count(member)) {
      return;  // still waiting
    }
  }

  // 1. Union of all unstable messages any survivor holds.
  std::map<MessageId, GroupDataPtr> message_union;
  for (const auto& [member, state] : flush_states_) {
    for (const auto& msg : state.unstable()) {
      message_union.emplace(msg->id(), msg);
    }
  }

  // 2. The common delivery cut: per sender, the furthest any survivor got.
  //    Everything at or below the cut is either already delivered at a given
  //    survivor or present in the union (if a survivor delivered it and it
  //    was pruned as stable, then by definition of stability everyone
  //    delivered it already).
  VectorClock final_cut;
  for (const auto& [member, state] : flush_states_) {
    final_cut.Merge(state.delivered());
  }

  // 3. Consolidate total-order assignments. Assignments below `base` are
  //    fixed (some survivor may have delivered at that sequence). Assignments
  //    at or above `base` were issued but delivered nowhere; renumber them
  //    densely so a sequence assigned only by the failed sequencer cannot
  //    leave a permanent gap.
  uint64_t base = 1;
  for (const auto& [member, state] : flush_states_) {
    base = std::max(base, state.next_total_deliver());
  }
  std::map<MessageId, uint64_t> merged;
  std::map<uint64_t, MessageId> above_base;
  for (const auto& [member, state] : flush_states_) {
    for (const auto& [id, seq] : state.known_assignments()) {
      if (seq < base) {
        merged.emplace(id, seq);
      } else {
        above_base.emplace(seq, id);
      }
    }
  }
  uint64_t next_seq = base;
  for (const auto& [old_seq, id] : above_base) {
    if (!merged.count(id)) {
      merged.emplace(id, next_seq++);
    }
  }
  std::vector<std::pair<MessageId, uint64_t>> merged_vec(merged.begin(), merged.end());

  // 4. Per-survivor ViewInstall with exactly the messages it is missing.
  //    The self-install mutates flush state, so it runs last. Joiners become
  //    members of the new view; they adopt the delivery cut rather than
  //    receiving history.
  const uint64_t new_view_id = flush_view_id_;
  std::vector<MemberId> new_members = survivors;
  for (MemberId joiner : pending_joiners_) {
    new_members.push_back(joiner);
  }
  std::sort(new_members.begin(), new_members.end());
  for (MemberId joiner : pending_joiners_) {
    // Default join: adopt the group cut, no history, no snapshot.
    VectorClock joiner_cut = final_cut;
    std::vector<GroupDataPtr> joiner_missing;
    uint64_t joiner_next_deliver = next_seq;
    net::PayloadPtr app_state;
    if (state_provider_) {
      // State transfer: snapshot our application state, which corresponds
      // exactly to our app-delivered vector ad_ (the self-install that would
      // advance it runs after this loop). Everything past that cut is either
      // in some survivor's unstable retention buffer (message_union) or in
      // our own causally-delivered-but-not-yet-app-delivered backlog, so the
      // two sets together are a complete resend.
      app_state = state_provider_();
      joiner_cut = ad_;
      joiner_next_deliver = next_total_deliver_;
      std::map<MessageId, GroupDataPtr> beyond = message_union;
      for (const auto& waiting : app_pending_) {
        beyond.emplace(waiting.data->id(), waiting.data);
      }
      for (const auto& [id, msg] : beyond) {
        if (id.seq > ad_.Get(id.sender)) {
          joiner_missing.push_back(StripPiggyback(msg));
        }
      }
    }
    auto install = std::make_shared<ViewInstall>(config_.group_id, new_view_id, new_members,
                                                 std::move(joiner_missing), merged_vec, next_seq,
                                                 std::move(joiner_cut), joiner_next_deliver,
                                                 std::move(app_state));
    ++stats_.flush_control_msgs;
    stats_.flush_payload_bytes += install->SizeBytes();
    transport_->SendReliable(joiner, MembershipPort(config_.group_id), install);
  }
  pending_joiners_.clear();
  std::shared_ptr<ViewInstall> own_install;
  for (MemberId member : survivors) {
    const FlushState& state = flush_states_.at(member);
    std::vector<GroupDataPtr> missing;
    for (const auto& [id, msg] : message_union) {
      if (id.seq > state.delivered().Get(id.sender)) {
        missing.push_back(msg);
      }
    }
    auto install = std::make_shared<ViewInstall>(config_.group_id, new_view_id, new_members,
                                                 std::move(missing), merged_vec, next_seq,
                                                 final_cut);
    if (member == self_) {
      own_install = std::move(install);
    } else {
      ++stats_.flush_control_msgs;
      stats_.flush_payload_bytes += install->SizeBytes();
      transport_->SendReliable(member, MembershipPort(config_.group_id), install);
    }
  }
  if (own_install) {
    OnViewInstall(*own_install);
  }
}

void GroupMember::OnViewInstall(const ViewInstall& install) {
  if (install.view_id() <= view_.id) {
    return;
  }

  // A joiner starts at the cut its install names: by default the group's
  // common delivery cut (history it never sees, by design), or — under state
  // transfer — the coordinator's app-delivered vector, after installing the
  // snapshot that corresponds to it. The cut merges *before* ingesting below
  // so the re-forwarded post-cut messages flow through the normal causal
  // path from exactly where the snapshot left off.
  const bool was_joining = joining_;
  if (joining_) {
    if (install.app_state() != nullptr && state_applier_) {
      state_applier_(install.app_state());
    }
    vd_.Merge(install.final_cut());
    ad_.Merge(install.final_cut());
    next_total_deliver_ = std::max(next_total_deliver_, install.next_total_deliver());
    joining_ = false;
  }

  // Ingest redistributed messages through the normal causal path.
  for (const auto& msg : install.missing()) {
    IngestData(msg);
  }

  // Failed-sender cleanup. Messages from a failed sender *beyond* the flush
  // cut (the furthest any survivor causally delivered) are lost for good: no
  // survivor holds a copy, and nothing deliverable can depend on them —
  // a dependent message would have required its own sender to causally
  // deliver the predecessor first, which would have pulled it into the cut.
  // Dropping them is the protocol admitting non-durability.
  //
  // Everything *at or below* the cut, by the same argument, is locally
  // present after ingesting `missing` above: if it went stable, every old
  // member (including us) already delivered it; otherwise it sat in some
  // survivor's retention buffer and was redistributed. So vd_/ad_ must NOT
  // be force-raised to the cut — those messages flow through the normal
  // causal path, and raising the app gate early would let their causal
  // successors overtake them at the application (a real causal-order
  // violation the chaos fuzzer caught). A joiner skips this: its install's
  // cut is the floor it starts from.
  if (!was_joining) {
    for (const auto& [sender, cut] : install.final_cut().entries()) {
      if (std::find(install.members().begin(), install.members().end(), sender) !=
          install.members().end()) {
        continue;  // live senders have reliable FIFO channels; no gaps
      }
      for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->data->id().sender == sender && it->data->id().seq > cut) {
          ++stats_.messages_dropped_at_view_change;
          pending_ids_.erase(it->data->id());
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  TryDeliverPending();

  // Adopt the consolidated total order *authoritatively*. The coordinator
  // merged every survivor's known assignments (renumbering those at or above
  // the delivery base to close gaps left by a dead sequencer), so the merged
  // map supersedes anything we hold — including a stale in-flight assignment
  // from the old sequencer that the renumbering moved.
  seq_by_id_.clear();
  order_by_seq_.clear();
  recent_assignments_.clear();
  ApplyAssignments(install.assignments());
  next_total_assign_ = std::max(next_total_assign_, install.next_total_seq());

  // Install the view.
  view_.id = install.view_id();
  view_.members = install.members();
  std::sort(view_.members.begin(), view_.members.end());
  stability_.SetMembers(view_.members);
  stability_.Prune();
  for (MemberId gone : suspected_) {
    last_heard_.erase(gone);
  }
  suspected_.clear();
  flush_states_.clear();

  // The new sequencer orders any held messages that lost their assignment
  // with the old sequencer, in its local causal delivery order.
  if (config_.total_order_mode == TotalOrderMode::kSequencer && IsSequencer()) {
    std::vector<std::pair<MessageId, uint64_t>> batch = AssignPendingUnorderedTotals();
    if (!batch.empty()) {
      auto order = std::make_shared<OrderAssignment>(config_.group_id, batch);
      ++stats_.order_msgs_sent;
      BroadcastReliable(OrderPort(config_.group_id), order);
      ApplyAssignments(batch);
    }
  }
  // Token regeneration: the lowest survivor re-seeds the token.
  if (config_.total_order_mode == TotalOrderMode::kToken && IsSequencer() && started_) {
    holding_token_ = true;
    simulator_->ScheduleAfter(config_.token_pass_delay, [this] {
      if (holding_token_ && started_) {
        PassToken(next_total_assign_);
      }
    });
  }
  TryDeliverApp();

  // Unblock.
  if (flushing_) {
    flushing_ = false;
    ++stats_.flushes_completed;
    stats_.blocked_time += simulator_->now() - flush_started_;
  }
  if (view_handler_) {
    view_handler_(view_);
  }
  FinishBlockedSends();
}

void GroupMember::FinishBlockedSends() {
  while (!blocked_sends_.empty() && !flushing_) {
    auto [mode, payload] = std::move(blocked_sends_.front());
    blocked_sends_.pop_front();
    Send(mode, std::move(payload));
  }
}

}  // namespace catocs
