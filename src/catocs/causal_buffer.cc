#include "src/catocs/causal_buffer.h"

#include "src/catocs/hybrid_buffer.h"
#include "src/catocs/overlay_buffer.h"
#include "src/catocs/stability.h"

namespace catocs {

const char* ToString(CausalBufferKind kind) {
  switch (kind) {
    case CausalBufferKind::kFullVector:
      return "full-vector";
    case CausalBufferKind::kHybrid:
      return "hybrid";
    case CausalBufferKind::kOverlay:
      return "overlay";
  }
  return "?";
}

std::unique_ptr<CausalBufferStrategy> MakeCausalBuffer(CausalBufferKind kind) {
  switch (kind) {
    case CausalBufferKind::kFullVector:
      return std::make_unique<StabilityTracker>();
    case CausalBufferKind::kHybrid:
      return std::make_unique<HybridBuffer>();
    case CausalBufferKind::kOverlay:
      return std::make_unique<OverlayCausalStrategy>();
  }
  return std::make_unique<StabilityTracker>();
}

}  // namespace catocs
