#include "src/catocs/wire_codec.h"

#include <cassert>
#include <utility>

namespace catocs {

size_t DeltaEntryCount(const VectorClock* prev, const VectorClock& cur) {
  if (prev == nullptr) {
    return cur.entry_count();
  }
  const VectorClock::Entries& a = prev->entries();
  const VectorClock::Entries& b = cur.entries();
  size_t changed = 0;
  size_t i = 0;
  for (const ClockEntry& entry : b) {
    while (i < a.size() && a[i].member < entry.member) {
      ++i;  // clocks never shrink, but stay robust to arbitrary inputs
    }
    if (i >= a.size() || a[i].member != entry.member || a[i].value != entry.value) {
      ++changed;
    }
  }
  return changed;
}

WireVt EncodeVtDelta(const VectorClock* prev, const VectorClock& cur) {
  WireVt wire;
  if (prev == nullptr) {
    wire.keyframe = true;
    wire.entries = cur.entries();
    return wire;
  }
  const VectorClock::Entries& a = prev->entries();
  size_t i = 0;
  for (const ClockEntry& entry : cur.entries()) {
    while (i < a.size() && a[i].member < entry.member) {
      ++i;
    }
    if (i >= a.size() || a[i].member != entry.member || a[i].value != entry.value) {
      wire.entries.push_back(entry);
    }
  }
  return wire;
}

VectorClock DecodeVtDelta(const VectorClock& reference, const WireVt& wire) {
  if (wire.keyframe) {
    VectorClock clock;
    for (const ClockEntry& entry : wire.entries) {
      clock.Set(entry.member, entry.value);
    }
    return clock;
  }
  VectorClock clock = reference;
  for (const ClockEntry& entry : wire.entries) {
    clock.Set(entry.member, entry.value);
  }
  return clock;
}

void ApplyVtDelta(VectorClock& reference, const WireVt& wire) {
  assert(!wire.keyframe);
  for (const ClockEntry& entry : wire.entries) {
    reference.Set(entry.member, entry.value);
  }
}

bool CausallyDeliverableDelta(const WireVt& wire, MemberId sender, uint64_t seq,
                              const VectorClock& delivered) {
  assert(!wire.keyframe);
  if (delivered.Get(sender) + 1 != seq) {
    return false;
  }
  for (const ClockEntry& entry : wire.entries) {
    if (entry.member != sender && entry.value > delivered.Get(entry.member)) {
      return false;
    }
  }
  return true;
}

}  // namespace catocs
