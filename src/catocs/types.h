// Shared vocabulary of the CATOCS protocol pipeline: the group configuration,
// the view, what a delivery looks like to the application, the handler
// signatures, and the cost counters every experiment reads. Split out of
// group_member.h so the individual ordering layers (src/catocs/*_layer.h) can
// speak these types without depending on the facade.

#ifndef REPRO_SRC_CATOCS_TYPES_H_
#define REPRO_SRC_CATOCS_TYPES_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/catocs/message.h"
#include "src/catocs/resource_budget.h"
#include "src/catocs/vector_clock.h"
#include "src/sim/time.h"

namespace obs {
class ProvenanceRecorder;
}  // namespace obs

namespace catocs {

enum class TotalOrderMode {
  kSequencer,  // fixed sequencer: lowest member id in the current view
  kToken,      // rotating token assigns sequence numbers
};

// Which retention-buffer strategy the causal/stability machinery uses (see
// causal_buffer.h). The full-vector tracker is the paper-faithful baseline;
// the hybrid buffer is the PAPERS.md-inspired alternative.
enum class CausalBufferKind {
  kFullVector,  // StabilityTracker: throttled matrix-walk pruning
  kHybrid,      // HybridBuffer: incremental floors + causal-evidence pruning
  // OverlayCausalStrategy + the spanning-overlay dissemination path
  // (DESIGN.md §11): O(1) control bytes per message, FIFO flooding over
  // src/net/overlay.h, tree-aggregated stability. Selecting it changes the
  // send path itself, not just retention — see GroupCore::overlay_mode().
  kOverlay,
};

// What a sender does when flow control refuses admission (DESIGN.md §10):
// either the send window is exhausted (a slow receiver holds the stability
// floor down) or the resource budget is at critical pressure.
enum class OverloadPolicy : uint8_t {
  // Refuse the send with kBackpressured and arm a deterministic retry timer;
  // the caller re-sends when credits reopen (SetSendReadyHandler).
  kThrottle = 0,
  // Admission control: drop the new message outright (kShed, counted in
  // sends_shed). Old traffic drains; new traffic pays the overload cost.
  kShedNew,
  // Throttle, but if the same slowest receiver pins the window shut for
  // laggard_patience consecutive retry ticks, hand it to the membership
  // layer's suspicion path so the group sheds the laggard and frees its
  // retention.
  kEvictLaggard,
};

inline const char* ToString(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kThrottle:
      return "throttle";
    case OverloadPolicy::kShedNew:
      return "shed-new";
    case OverloadPolicy::kEvictLaggard:
      return "evict-laggard";
  }
  return "?";
}

// Outcome of one GroupMember::TrySend. Send() keeps its historical
// MessageId-only signature (id {0,0} on any refusal).
enum class SendStatus : uint8_t {
  kSent = 0,          // broadcast (or handed to the batcher); id is valid
  kQueuedBehindFlush, // accepted: queued while a view change flushes, re-sent
                      // on install (id assigned then)
  kBackpressured,     // refused: no send credits / budget critical (throttle)
  kShed,              // dropped by the shed-new admission policy
  kStopped,           // member not started or crashed
};

struct SendResult {
  SendStatus status = SendStatus::kSent;
  MessageId id{0, 0};

  // The message will (eventually) be broadcast.
  bool accepted() const {
    return status == SendStatus::kSent || status == SendStatus::kQueuedBehindFlush;
  }
};

struct GroupConfig {
  GroupId group_id = 1;

  // Stability: piggyback the sender's delivered-vector on every data message,
  // and/or gossip it periodically (Zero disables gossip).
  bool piggyback_acks = true;
  sim::Duration ack_gossip_interval = sim::Duration::Millis(50);

  // Footnote-4 causal variant: attach unstable causal predecessors to each
  // message instead of relying on receiver-side delay alone.
  bool piggyback_causal = false;

  TotalOrderMode total_order_mode = TotalOrderMode::kSequencer;
  // Delay before the token is passed on (models token processing).
  sim::Duration token_pass_delay = sim::Duration::Micros(200);

  // How often (in simulated time) a member recomputes stability and prunes
  // its retention buffer. Pruning walks the member matrix, so it is
  // throttled off the per-message path. (Only the full-vector strategy
  // needs the throttle; the hybrid buffer releases incrementally.)
  sim::Duration prune_interval = sim::Duration::Millis(25);

  // Retention-buffer strategy for atomic delivery.
  CausalBufferKind causal_buffer = CausalBufferKind::kFullVector;

  // --- Raw-speed layer (DESIGN.md "Raw-speed layer") ------------------------
  // Sender-side batching: coalesce up to this many consecutive ordered sends
  // into one GroupBatch frame. 1 (the default) bypasses the batcher entirely
  // — the send path is byte-identical to the unbatched stack. A partial
  // batch flushes after batch_flush_delay, and always before a membership
  // flush blocks the group (a batch never spans a view change).
  uint32_t batching = 1;
  sim::Duration batch_flush_delay = sim::Duration::Millis(1);

  // Delta-encode vector timestamps on the wire: each data frame carries only
  // the clock entries changed since the sender's previous frame (keyframes
  // at stream start and after view changes), reconstructed at the receiver
  // against a per-sender reference clock (wire_codec.h). Off by default.
  bool delta_timestamps = false;

  // Pipeline observability: when set, each ordering layer reports
  // enter/exit + hold-reason into the member's PipelineStats and emits
  // per-message lifecycle spans into the simulator's SpanRecorder (if that
  // recorder is itself enabled). Off by default so the per-message fast path
  // and every bench's stdout stay byte-identical.
  bool observability = false;

  // Causal provenance recording (DESIGN.md §8): with observability on and a
  // recorder attached, every layer reports per-message gap provenance on
  // release (false-causality classification), the delivery path reports the
  // potential-causality frontier, and DeclareDependency feeds the semantic
  // graph. Record-only, shared across the group's members — nullptr (the
  // default) costs one pointer test on instrumented paths.
  obs::ProvenanceRecorder* provenance = nullptr;

  // Membership (off by default; most experiments use static groups).
  bool enable_membership = false;
  sim::Duration heartbeat_interval = sim::Duration::Millis(20);
  sim::Duration failure_timeout = sim::Duration::Millis(100);

  // --- Bounded resources & flow control (DESIGN.md §10) ---------------------
  // Per-group memory budget charged by the retention strategies, the sender
  // batcher, the total-order pending set, and the transport send queues.
  // Unbounded by default: nothing is charged and the pipeline stays
  // byte-identical.
  BudgetConfig budget;

  // Sender-side send window: at most this many of a member's own ordered
  // sends may sit above the group stability floor (credits = send_window −
  // (send_seq − stable floor for self)), so the slowest live receiver
  // throttles the sender instead of exploding its retention. 0 disables
  // window flow control.
  uint32_t send_window = 0;

  // What to do when admission is refused (window shut or budget critical).
  OverloadPolicy overload_policy = OverloadPolicy::kThrottle;

  // Deterministic retry cadence while backpressured: each tick re-checks
  // credits, refreshes the transport charge, and (under evict-laggard)
  // advances the laggard clock.
  sim::Duration flow_retry_interval = sim::Duration::Millis(5);

  // Evict-laggard: consecutive retry ticks the same slowest receiver must
  // pin the window shut before it is reported to membership. Generous enough
  // to outlast startup ack propagation and ordinary stability lag.
  uint32_t laggard_patience = 20;
};

struct View {
  uint64_t id = 1;
  std::vector<MemberId> members;  // sorted
};

// What the application sees on delivery. The message itself is the single
// immutable GroupData shared by every destination (and by the stability
// buffer) — a delivery adds only the per-receiver facts, so handing a
// message to N applications never deep-copies its ordering metadata.
struct Delivery {
  GroupDataPtr data;
  uint64_t total_seq = 0;  // assigned group-wide sequence; 0 unless kTotal
  sim::TimePoint delivered_at;
  // Time the message spent waiting in this member's delay queue for causal
  // predecessors (the cost of potential/false causality).
  sim::Duration causal_delay;

  const MessageId& id() const { return data->id(); }
  OrderingMode mode() const { return data->mode(); }
  const net::PayloadPtr& payload() const { return data->app_payload(); }
  sim::TimePoint sent_at() const { return data->sent_at(); }
  const VectorClock& vt() const { return data->vt(); }
};

using DeliveryHandler = std::function<void(const Delivery&)>;
using ViewHandler = std::function<void(const View&)>;

// Application state transfer for crash-recovery rejoin (see group_member.h
// for the full contract).
using StateProvider = std::function<net::PayloadPtr()>;
using StateApplier = std::function<void(const net::PayloadPtr&)>;

struct GroupStats {
  uint64_t sent = 0;
  uint64_t sends_while_stopped = 0;  // dropped: member crashed or not started
  uint64_t causal_delivered = 0;  // passed the vector-clock condition
  uint64_t app_delivered = 0;     // handed to the application
  uint64_t delayed_deliveries = 0;
  sim::Duration total_causal_delay = sim::Duration::Zero();
  uint64_t order_msgs_sent = 0;
  uint64_t ack_msgs_sent = 0;
  uint64_t token_passes = 0;
  uint64_t ordering_header_bytes = 0;  // VT + ack headers on data we sent
  // Data-frame transmissions those header bytes rode on (N−1 per direct
  // multicast, one per overlay forward, fanout per batch frame) —
  // ordering_header_bytes / data_transmissions is the metadata bytes/msg
  // figure E21 and bench.sh report.
  uint64_t data_transmissions = 0;
  uint64_t piggyback_msgs_carried = 0;
  uint64_t piggyback_bytes = 0;
  uint64_t flushes_completed = 0;
  // Relayed suspicions rejected because we heard the suspect too recently
  // (the fresh-evidence veto in HandleSuspicion).
  uint64_t suspicions_vetoed = 0;
  // Flush rounds a coordinator refused to complete because its survivor set
  // was not a primary partition of the departing view (strict majority, or
  // exactly half holding the lowest member id). The minority side wedges
  // rather than installing a rival view.
  uint64_t flushes_blocked_no_quorum = 0;
  uint64_t flush_control_msgs = 0;
  uint64_t flush_payload_bytes = 0;
  sim::Duration blocked_time = sim::Duration::Zero();
  // Messages from a failed sender abandoned at a view change because no
  // survivor held a copy (atomic-but-not-durable delivery, §2).
  uint64_t messages_dropped_at_view_change = 0;

  // --- Raw-speed layer ------------------------------------------------------
  uint64_t batches_sent = 0;          // GroupBatch frames broadcast
  uint64_t batched_data_msgs = 0;     // constituents carried in those frames
  uint64_t delta_frames_sent = 0;     // delta-encoded (non-keyframe) frames
  uint64_t delta_keyframes_sent = 0;  // full-clock frames (stream start/view change)
  // Header bytes the delta encoding avoided vs. shipping the full clock,
  // summed over destinations (the honest counterpart of ordering_header_bytes).
  uint64_t delta_header_bytes_saved = 0;
  // Receiver-side: frames whose reconstructed clock failed to match (must
  // stay 0 — cross-checked by tests and the chaos oracle's delivery audit).
  uint64_t delta_decode_mismatches = 0;
  // Deliverability checks answered by the O(changed-entries) fast path
  // instead of a full clock scan.
  uint64_t delta_fast_path_hits = 0;

  // --- Bounded resources & flow control ------------------------------------
  uint64_t sends_backpressured = 0;  // refused with kBackpressured
  uint64_t sends_shed = 0;           // dropped by the shed-new policy
  uint64_t flow_reopen_wakeups = 0;  // window reopenings (retry tick or ack progress)
  uint64_t laggards_reported = 0;    // evict-laggard hand-offs to membership

  // --- Overlay dissemination (DESIGN.md §11) --------------------------------
  uint64_t overlay_forwards = 0;      // data frames pushed onto tree links
  uint64_t overlay_prebuffered = 0;   // frames stashed until their view installed
  uint64_t overlay_stale_dropped = 0; // old-view frames dropped (provable dups)
  uint64_t overlay_floor_updates = 0; // release-floor announcements adopted
};

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_TYPES_H_
