#include "src/catocs/resource_budget.h"

namespace catocs {

const char* ToString(MemoryPressure level) {
  switch (level) {
    case MemoryPressure::kNone:
      return "none";
    case MemoryPressure::kHigh:
      return "high";
    case MemoryPressure::kCritical:
      return "critical";
  }
  return "?";
}

void ResourceBudget::Set(Component component, size_t bytes, size_t messages) {
  total_bytes_ += bytes - bytes_[component];
  total_msgs_ += messages - msgs_[component];
  bytes_[component] = bytes;
  msgs_[component] = messages;
  peak_bytes_ = std::max(peak_bytes_, total_bytes_);
  peak_msgs_ = std::max(peak_msgs_, total_msgs_);
  if (sink_ != nullptr) {
    sink_->peak_bytes = std::max<uint64_t>(sink_->peak_bytes, total_bytes_);
    sink_->peak_messages = std::max<uint64_t>(sink_->peak_messages, total_msgs_);
  }
  Reassess();
}

double ResourceBudget::utilization() const {
  double util = 0.0;
  if (config_.max_bytes != 0) {
    util = static_cast<double>(total_bytes_) / static_cast<double>(config_.max_bytes);
  }
  if (config_.max_messages != 0) {
    util = std::max(util, static_cast<double>(total_msgs_) /
                              static_cast<double>(config_.max_messages));
  }
  return util;
}

void ResourceBudget::Reassess() {
  if (!config_.bounded()) {
    return;
  }
  const double util = utilization();
  // Escalation is immediate and sticky: within an epoch the level only goes
  // up. The epoch ends (and the level resets) only once utilization drains
  // below the low watermark — that hysteresis is what makes "pressure is
  // monotone within an epoch" a checkable oracle invariant.
  if (util >= config_.critical_watermark) {
    if (level_ != MemoryPressure::kCritical) {
      level_ = MemoryPressure::kCritical;
      if (sink_ != nullptr) {
        ++sink_->pressure_critical;
      }
    }
  } else if (util >= config_.high_watermark) {
    if (level_ == MemoryPressure::kNone) {
      level_ = MemoryPressure::kHigh;
      if (sink_ != nullptr) {
        ++sink_->pressure_high;
      }
    }
  } else if (util < config_.low_watermark && level_ != MemoryPressure::kNone) {
    level_ = MemoryPressure::kNone;
    ++epoch_;
    if (sink_ != nullptr) {
      ++sink_->pressure_epochs;
    }
  }
}

}  // namespace catocs
