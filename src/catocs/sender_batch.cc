#include "src/catocs/sender_batch.h"

#include <utility>

#include "src/mem/pool.h"

namespace catocs {

SenderBatcher::~SenderBatcher() {
  if (flush_timer_.valid()) {
    core_->simulator->Cancel(flush_timer_);
  }
}

void SenderBatcher::Append(const GroupDataPtr& data) {
  // Each constituent opens its own batch-hold span at entry: the time it
  // spends parked here (waiting for the batch to fill or the timer) is part
  // of *its* lifecycle, not the frame's.
  core_->RecordSpan(data->id(), sim::SpanEvent::kEnter, "batch", "");
  pending_.push_back(data);
  pending_bytes_ += data->SizeBytes() + data->HeaderBytes();
  ChargeBudget();
  if (pending_.size() >= core_->config.batching) {
    FlushNow();
    return;
  }
  if (!flush_timer_.valid()) {
    ArmTimer();
  }
}

void SenderBatcher::ArmTimer() {
  flush_timer_ = core_->simulator->ScheduleAfter(core_->config.batch_flush_delay, [this] {
    flush_timer_ = sim::EventId{};
    FlushNow();
  });
}

void SenderBatcher::FlushNow() {
  if (flush_timer_.valid()) {
    core_->simulator->Cancel(flush_timer_);
    flush_timer_ = sim::EventId{};
  }
  if (pending_.empty()) {
    return;
  }
  auto batch = mem::MakePooled<GroupBatch>(core_->config.group_id, std::move(pending_));
  pending_.clear();  // moved-from: restore to a known-empty state
  pending_bytes_ = 0;
  ChargeBudget();

  ++core_->stats.batches_sent;
  core_->stats.batched_data_msgs += batch->entries().size();
  core_->stats.ordering_header_bytes +=
      batch->HeaderBytes() * (core_->view.members.size() - 1);
  core_->stats.data_transmissions += core_->view.members.size() - 1;
  if (core_->observing()) {
    // Close every constituent's batch-hold span: the frame is leaving now,
    // so each one records its own (enter -> deliver) wait individually.
    for (const GroupDataPtr& entry : batch->entries()) {
      core_->RecordSpan(entry->id(), sim::SpanEvent::kDeliver, "batch",
                        "flush n=" + std::to_string(batch->entries().size()));
    }
  }
  core_->BroadcastReliable(GroupPorts::Data(core_->config.group_id), batch);
  core_->SyncTransportBudget();
}

void SenderBatcher::DropPending() {
  if (flush_timer_.valid()) {
    core_->simulator->Cancel(flush_timer_);
    flush_timer_ = sim::EventId{};
  }
  for (const GroupDataPtr& entry : pending_) {
    core_->RecordSpan(entry->id(), sim::SpanEvent::kDrop, "batch", "sender-stopped");
  }
  pending_.clear();
  pending_bytes_ = 0;
  ChargeBudget();
}

}  // namespace catocs
