#include "src/catocs/fifo_layer.h"

#include <set>
#include <utility>

#include "src/catocs/total_order_layer.h"

namespace catocs {

void FifoLayer::Enqueue(const GroupDataPtr& data, sim::Duration causal_delay) {
  app_pending_.push_back(AppPending{data, causal_delay});
  TryDeliverApp();
}

bool FifoLayer::AppDeliverable(const GroupData& data) const {
  if (!DominatesIgnoring(ad_, data.vt(), data.id().sender)) {
    return false;
  }
  if (data.mode() == OrderingMode::kTotal) {
    return core_->total->IsNextToDeliver(data.id());
  }
  return true;
}

void FifoLayer::TryDeliverApp() {
  bool progress = true;
  while (progress) {
    progress = false;
    std::set<MemberId> blocked_senders;
    for (auto it = app_pending_.begin(); it != app_pending_.end(); ++it) {
      const MemberId sender = it->data->id().sender;
      if (blocked_senders.count(sender)) {
        continue;  // an earlier message from this sender is still gated
      }
      if (!AppDeliverable(*it->data)) {
        blocked_senders.insert(sender);
        continue;
      }
      AppPending entry = std::move(*it);
      app_pending_.erase(it);
      ad_.RaiseTo(sender, entry.data->id().seq);
      uint64_t total_seq = 0;
      if (entry.data->mode() == OrderingMode::kTotal) {
        total_seq = core_->total->ConsumeDeliverySlot();
      }
      DeliverToApp(entry.data, total_seq, entry.causal_delay);
      progress = true;
      break;  // iterators invalidated; rescan
    }
  }
}

void FifoLayer::DeliverDirect(const GroupDataPtr& data) {
  DeliverToApp(data, 0, sim::Duration::Zero());
}

void FifoLayer::DeliverToApp(const GroupDataPtr& data, uint64_t total_seq,
                             sim::Duration causal_delay) {
  ++core_->stats.app_delivered;
  if (!core_->delivery_handler) {
    return;
  }
  // Shares the one immutable GroupData; nothing per-recipient is copied.
  Delivery delivery;
  delivery.data = data;
  delivery.total_seq = total_seq;
  delivery.delivered_at = core_->simulator->now();
  delivery.causal_delay = causal_delay;
  core_->delivery_handler(delivery);
}

}  // namespace catocs
