#include "src/catocs/fifo_layer.h"

#include <set>
#include <utility>

#include "src/catocs/total_order_layer.h"

namespace catocs {

void FifoLayer::Enqueue(const GroupDataPtr& data, sim::Duration causal_delay) {
  // Fast path: nothing waiting and the app gate is already clear — skip the
  // queue round trip (entry construction, deque churn, rescans). When the
  // gate holds, the hold-reason attribution below would pick kFifoGap (the
  // kTotalTurn arm requires IsNextToDeliver to be false, which AppDeliverable
  // just ruled out), so the observability record is identical.
  if (app_pending_.empty() && AppDeliverable(*data)) {
    if (core_->observing()) {
      core_->pipeline_stats.RecordEnter(HoldReason::kFifoGap);
      core_->RecordSpan(data->id(), sim::SpanEvent::kEnter, name(), ToString(HoldReason::kFifoGap));
      core_->pipeline_stats.RecordRelease(HoldReason::kFifoGap, sim::Duration::Zero());
      core_->RecordSpan(data->id(), sim::SpanEvent::kDeliver, name());
    }
    ad_.RaiseTo(data->id().sender, data->id().seq);
    uint64_t total_seq = 0;
    if (data->mode() == OrderingMode::kTotal) {
      total_seq = core_->total->ConsumeDeliverySlot();
    }
    DeliverToApp(data, total_seq, causal_delay);
    return;
  }
  AppPending entry{data, causal_delay, core_->simulator->now(), HoldReason::kFifoGap};
  if (core_->observing()) {
    // Attribute the coming wait to whichever condition blocks *now*: the
    // app-level causal gate, or (for kTotal, once that gate clears) the
    // message's global sequence turn.
    if (DominatesIgnoring(ad_, data->vt(), data->id().sender) &&
        data->mode() == OrderingMode::kTotal && !core_->total->IsNextToDeliver(data->id())) {
      entry.gate = HoldReason::kTotalTurn;
    }
    core_->pipeline_stats.RecordEnter(entry.gate);
    core_->RecordSpan(data->id(), sim::SpanEvent::kEnter, name(), ToString(entry.gate));
  }
  app_pending_.push_back(std::move(entry));
  TryDeliverApp();
}

bool FifoLayer::AppDeliverable(const GroupData& data) const {
  if (!DominatesIgnoring(ad_, data.vt(), data.id().sender)) {
    return false;
  }
  if (data.mode() == OrderingMode::kTotal) {
    return core_->total->IsNextToDeliver(data.id());
  }
  return true;
}

void FifoLayer::TryDeliverApp() {
  bool progress = true;
  while (progress) {
    progress = false;
    std::set<MemberId> blocked_senders;
    for (auto it = app_pending_.begin(); it != app_pending_.end(); ++it) {
      const MemberId sender = it->data->id().sender;
      if (blocked_senders.count(sender)) {
        continue;  // an earlier message from this sender is still gated
      }
      if (!AppDeliverable(*it->data)) {
        blocked_senders.insert(sender);
        continue;
      }
      AppPending entry = std::move(*it);
      app_pending_.erase(it);
      if (core_->observing()) {
        core_->pipeline_stats.RecordRelease(entry.gate,
                                            core_->simulator->now() - entry.entered_at);
        core_->RecordSpan(entry.data->id(), sim::SpanEvent::kDeliver, name());
        core_->RecordHoldProvenance(entry.data->id(), name(), entry.entered_at);
      }
      ad_.RaiseTo(sender, entry.data->id().seq);
      uint64_t total_seq = 0;
      if (entry.data->mode() == OrderingMode::kTotal) {
        total_seq = core_->total->ConsumeDeliverySlot();
      }
      DeliverToApp(entry.data, total_seq, entry.causal_delay);
      progress = true;
      break;  // iterators invalidated; rescan
    }
  }
}

void FifoLayer::DeliverDirect(const GroupDataPtr& data) {
  DeliverToApp(data, 0, sim::Duration::Zero());
}

void FifoLayer::DeliverToApp(const GroupDataPtr& data, uint64_t total_seq,
                             sim::Duration causal_delay) {
  ++core_->stats.app_delivered;
  // App-level delivery is the provenance observation point: it is where the
  // fault rig's delivery records sit, so the hidden-channel oracle can
  // cross-check the recorder against an independent recount. Unordered
  // messages carry no timestamp, hence no potential frontier to classify.
  if (core_->observing() && data->mode() != OrderingMode::kUnordered) {
    core_->RecordDeliveryProvenance(*data);
  }
  if (!core_->delivery_handler) {
    return;
  }
  // Shares the one immutable GroupData; nothing per-recipient is copied.
  Delivery delivery;
  delivery.data = data;
  delivery.total_seq = total_seq;
  delivery.delivered_at = core_->simulator->now();
  delivery.causal_delay = causal_delay;
  core_->delivery_handler(delivery);
}

}  // namespace catocs
