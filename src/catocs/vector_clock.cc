#include "src/catocs/vector_clock.h"

#include <algorithm>
#include <sstream>

namespace catocs {

namespace {

// Position of `member`'s entry, or of the first larger member id.
inline VectorClock::Entries::const_iterator Find(const VectorClock::Entries& entries,
                                                 MemberId member) {
  return std::lower_bound(
      entries.begin(), entries.end(), member,
      [](const ClockEntry& entry, MemberId m) { return entry.member < m; });
}

}  // namespace

const char* ToString(CausalOrder order) {
  switch (order) {
    case CausalOrder::kEqual:
      return "equal";
    case CausalOrder::kBefore:
      return "before";
    case CausalOrder::kAfter:
      return "after";
    case CausalOrder::kConcurrent:
      return "concurrent";
  }
  return "?";
}

uint64_t VectorClock::Get(MemberId member) const {
  auto it = Find(entries_, member);
  return it != entries_.end() && it->member == member ? it->value : 0;
}

void VectorClock::Set(MemberId member, uint64_t value) {
  auto it = Find(entries_, member);
  const bool present = it != entries_.end() && it->member == member;
  if (value == 0) {
    if (present) {
      entries_.erase(it);
    }
  } else if (present) {
    // const_iterator arithmetic keeps Find shareable; convert for the write.
    entries_[static_cast<size_t>(it - entries_.begin())].value = value;
  } else {
    entries_.insert(it, ClockEntry{member, value});
  }
  CheckCanonical();
}

uint64_t VectorClock::Increment(MemberId member) {
  auto it = Find(entries_, member);
  if (it != entries_.end() && it->member == member) {
    return ++entries_[static_cast<size_t>(it - entries_.begin())].value;
  }
  entries_.insert(it, ClockEntry{member, 1});
  CheckCanonical();
  return 1;
}

void VectorClock::RaiseTo(MemberId member, uint64_t value) {
  if (value == 0) {
    return;
  }
  auto it = Find(entries_, member);
  if (it != entries_.end() && it->member == member) {
    size_t index = static_cast<size_t>(it - entries_.begin());
    if (value > entries_[index].value) {
      entries_[index].value = value;
    }
    return;
  }
  entries_.insert(it, ClockEntry{member, value});
  CheckCanonical();
}

void VectorClock::Merge(const VectorClock& other) {
  if (other.entries_.empty()) {
    return;
  }
  if (entries_.empty()) {
    entries_ = other.entries_;
    return;
  }
  Entries merged;
  merged.reserve(std::max(entries_.size(), other.entries_.size()));
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->member < b->member) {
      merged.push_back(*a++);
    } else if (b->member < a->member) {
      merged.push_back(*b++);
    } else {
      merged.push_back(ClockEntry{a->member, std::max(a->value, b->value)});
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), a, entries_.end());
  merged.insert(merged.end(), b, other.entries_.end());
  entries_ = std::move(merged);
  CheckCanonical();
}

void VectorClock::MeetMin(const VectorClock& other) {
  Entries met;
  met.reserve(std::min(entries_.size(), other.entries_.size()));
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->member < b->member) {
      ++a;  // absent from other: min is 0, drop
    } else if (b->member < a->member) {
      ++b;
    } else {
      met.push_back(ClockEntry{a->member, std::min(a->value, b->value)});
      ++a;
      ++b;
    }
  }
  entries_ = std::move(met);
  CheckCanonical();
}

CausalOrder VectorClock::Compare(const VectorClock& other) const {
  bool less_somewhere = false;  // this < other at some coordinate
  bool greater_somewhere = false;
  // One pass over the union of members; both sides are sorted.
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() || b != other.entries_.end()) {
    uint64_t va = 0;
    uint64_t vb = 0;
    if (b == other.entries_.end() || (a != entries_.end() && a->member < b->member)) {
      va = a->value;
      ++a;
    } else if (a == entries_.end() || b->member < a->member) {
      vb = b->value;
      ++b;
    } else {
      va = a->value;
      vb = b->value;
      ++a;
      ++b;
    }
    if (va < vb) {
      less_somewhere = true;
    } else if (va > vb) {
      greater_somewhere = true;
    }
  }
  if (less_somewhere && greater_somewhere) {
    return CausalOrder::kConcurrent;
  }
  if (less_somewhere) {
    return CausalOrder::kBefore;
  }
  if (greater_somewhere) {
    return CausalOrder::kAfter;
  }
  return CausalOrder::kEqual;
}

bool VectorClock::Dominates(const VectorClock& other) const {
  // Single co-scan: every entry of `other` must be matched here with at
  // least its value (a missing entry means 0 and cannot dominate a stored,
  // hence nonzero, one).
  auto a = entries_.begin();
  for (const ClockEntry& theirs : other.entries_) {
    while (a != entries_.end() && a->member < theirs.member) {
      ++a;
    }
    if (a == entries_.end() || a->member != theirs.member || a->value < theirs.value) {
      return false;
    }
  }
  return true;
}

bool CausallyDeliverable(const VectorClock& vt, MemberId sender, const VectorClock& delivered) {
  auto d = delivered.entries().begin();
  const auto d_end = delivered.entries().end();
  for (const auto& [member, count] : vt.entries()) {
    while (d != d_end && d->member < member) {
      ++d;
    }
    const uint64_t have = (d != d_end && d->member == member) ? d->value : 0;
    if (member == sender) {
      if (count != have + 1) {
        return false;
      }
    } else if (count > have) {
      return false;
    }
  }
  return true;
}

bool DominatesIgnoring(const VectorClock& delivered, const VectorClock& vt, MemberId skip) {
  auto d = delivered.entries().begin();
  const auto d_end = delivered.entries().end();
  for (const auto& [member, count] : vt.entries()) {
    if (member == skip) {
      continue;
    }
    while (d != d_end && d->member < member) {
      ++d;
    }
    const uint64_t have = (d != d_end && d->member == member) ? d->value : 0;
    if (count > have) {
      return false;
    }
  }
  return true;
}

std::string VectorClock::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [member, value] : entries_) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << member << ":" << value;
  }
  out << "}";
  return out.str();
}

}  // namespace catocs
