#include "src/catocs/vector_clock.h"

#include <sstream>

namespace catocs {

const char* ToString(CausalOrder order) {
  switch (order) {
    case CausalOrder::kEqual:
      return "equal";
    case CausalOrder::kBefore:
      return "before";
    case CausalOrder::kAfter:
      return "after";
    case CausalOrder::kConcurrent:
      return "concurrent";
  }
  return "?";
}

uint64_t VectorClock::Get(MemberId member) const {
  auto it = entries_.find(member);
  return it == entries_.end() ? 0 : it->second;
}

void VectorClock::Set(MemberId member, uint64_t value) {
  if (value == 0) {
    entries_.erase(member);
  } else {
    entries_[member] = value;
  }
}

uint64_t VectorClock::Increment(MemberId member) { return ++entries_[member]; }

void VectorClock::Merge(const VectorClock& other) {
  for (const auto& [member, value] : other.entries_) {
    uint64_t& mine = entries_[member];
    if (value > mine) {
      mine = value;
    }
  }
}

CausalOrder VectorClock::Compare(const VectorClock& other) const {
  bool less_somewhere = false;   // this < other at some coordinate
  bool greater_somewhere = false;
  // Walk the union of keys; both maps are ordered by member id.
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() || b != other.entries_.end()) {
    uint64_t va = 0;
    uint64_t vb = 0;
    if (b == other.entries_.end() || (a != entries_.end() && a->first < b->first)) {
      va = a->second;
      ++a;
    } else if (a == entries_.end() || b->first < a->first) {
      vb = b->second;
      ++b;
    } else {
      va = a->second;
      vb = b->second;
      ++a;
      ++b;
    }
    if (va < vb) {
      less_somewhere = true;
    } else if (va > vb) {
      greater_somewhere = true;
    }
  }
  if (less_somewhere && greater_somewhere) {
    return CausalOrder::kConcurrent;
  }
  if (less_somewhere) {
    return CausalOrder::kBefore;
  }
  if (greater_somewhere) {
    return CausalOrder::kAfter;
  }
  return CausalOrder::kEqual;
}

bool VectorClock::Dominates(const VectorClock& other) const {
  for (const auto& [member, value] : other.entries_) {
    if (Get(member) < value) {
      return false;
    }
  }
  return true;
}

bool VectorClock::operator==(const VectorClock& other) const {
  // Maps may differ in explicit zeros; compare semantically.
  return Dominates(other) && other.Dominates(*this);
}

std::string VectorClock::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [member, value] : entries_) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << member << ":" << value;
  }
  out << "}";
  return out.str();
}

}  // namespace catocs
