// Pluggable retention-buffer strategies for atomic delivery.
//
// A message is *stable* once every current group member has delivered it;
// until then each member retains a copy so any member can re-forward it if
// the original sender fails mid-multicast (§2). How aggressively that
// retention buffer is trimmed is a strategy decision: the paper-faithful
// full-vector tracker (stability.h) walks the whole member matrix on a
// throttled schedule, while the hybrid buffer (hybrid_buffer.h) keeps
// incremental per-sender floors and mines causal timestamps as implicit
// acks, after the designs in PAPERS.md (Nédelec et al.'s scalable causal
// broadcast, Almeida's hybrid buffering). The stability *condition* is
// identical across strategies — only when buffered copies are released
// differs — so every strategy is safe to swap under the flush protocol.

#ifndef REPRO_SRC_CATOCS_CAUSAL_BUFFER_H_
#define REPRO_SRC_CATOCS_CAUSAL_BUFFER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/catocs/message.h"
#include "src/catocs/types.h"

namespace catocs {

class CausalBufferStrategy {
 public:
  virtual ~CausalBufferStrategy() = default;

  virtual const char* name() const = 0;

  // The member set over which the stability minimum is taken. Removing a
  // member (it failed) can only make more messages stable.
  virtual void SetMembers(const std::vector<MemberId>& members) = 0;

  // Records that `member` has contiguously delivered `vec[s]` messages from
  // each sender s — an ack vector from gossip or piggybacked on data.
  virtual void UpdateMemberVector(MemberId member, const VectorClock& vec) = 0;

  // Point update: `member` has contiguously delivered `count` messages from
  // `sender`. The per-delivery hot path.
  virtual void UpdateMemberEntry(MemberId member, MemberId sender, uint64_t count) = 0;

  // Optional evidence channel: a delivered message stamped `vt` by `sender`
  // proves `sender` had causally delivered everything at or below `vt`
  // before sending. The full-vector tracker ignores this (its release
  // schedule is the paper's baseline being measured); the hybrid buffer
  // folds it in as an implicit ack, which is what keeps its occupancy low
  // even when explicit acks are sparse.
  virtual void ObserveDeliveredTimestamp(MemberId sender, const VectorClock& vt) {
    (void)sender;
    (void)vt;
  }

  // Adds a delivered (or sent) message to the retention buffer.
  virtual void AddToBuffer(const GroupDataPtr& msg) = 0;

  // Per-sender stability floor: min over members of their delivered count.
  virtual VectorClock StableVector() const = 0;

  // Stability floor for one sender: min over members of their contiguously
  // delivered count of `sender`'s messages (0 while any member is
  // unreported). The flow controller's credit formula reads this per tick,
  // so strategies override it with an O(members) walk rather than paying for
  // the full StableVector.
  virtual uint64_t StableFloorFor(MemberId sender) const { return StableVector().Get(sender); }

  // The member holding that floor down — the slowest receiver of `sender`'s
  // stream (lowest id on ties; 0 with no members). Drives the evict-laggard
  // overload policy.
  virtual MemberId SlowestMemberFor(MemberId sender) const = 0;

  // Drops every buffered message at or below the stability floor.
  virtual void Prune() = 0;

  // Messages not yet known stable (what a flush contributes).
  virtual std::vector<GroupDataPtr> UnstableMessages() const = 0;

  // Looks up a buffered message; nullptr when absent (already pruned).
  virtual GroupDataPtr Find(const MessageId& id) const = 0;

  virtual size_t buffered_count() const = 0;
  virtual size_t buffered_bytes() const = 0;
  virtual size_t peak_buffered_count() const = 0;
  virtual size_t peak_buffered_bytes() const = 0;

  // Observability hook: called for every buffered copy the strategy releases
  // as stable (not for view-change resets), together with the strategy's
  // name for the release mechanism ("prune" for the full-vector matrix walk,
  // "floor"/"floor-sweep" for the hybrid buffer's eager paths) — surfaced as
  // retention-gap provenance by the stability layer. Unset by default so the
  // release paths stay branch-cheap; the stability layer installs one only
  // when the group runs with observability on.
  using ReleaseObserver = std::function<void(const GroupDataPtr&, const char* cause)>;
  void SetReleaseObserver(ReleaseObserver observer) { release_observer_ = std::move(observer); }

  // Bounded-resource accounting (DESIGN.md §10): when a budget is installed
  // the strategy reports its retention occupancy after every add/release.
  // Unset by default (one pointer test on those paths).
  void SetBudget(ResourceBudget* budget) { budget_ = budget; }

 protected:
  void NotifyRelease(const GroupDataPtr& msg, const char* cause) {
    if (release_observer_) {
      release_observer_(msg, cause);
    }
  }

  void ChargeBudget(size_t bytes, size_t messages) {
    if (budget_ != nullptr) {
      budget_->Set(ResourceBudget::kRetention, bytes, messages);
    }
  }

 private:
  ReleaseObserver release_observer_;
  ResourceBudget* budget_ = nullptr;
};

const char* ToString(CausalBufferKind kind);

std::unique_ptr<CausalBufferStrategy> MakeCausalBuffer(CausalBufferKind kind);

}  // namespace catocs

#endif  // REPRO_SRC_CATOCS_CAUSAL_BUFFER_H_
