// Replicated key-value store example (§4.4 of the paper).
//
// Demonstrates the two replication designs side by side:
//   * the transactional store (2PC + WAL + write-all-available), including a
//     grouped multi-key write, a replica's state-level veto aborting the
//     whole group, and a failed replica being dropped from the availability
//     list;
//   * the CATOCS store (primary-updater cbcast), including the write-safety
//     0 durability hole: the client is told "ok" for a write no replica will
//     ever see.
//
// Run: ./build/examples/replicated_kv

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/catocs/group.h"
#include "src/txn/replicated_store.h"

int main() {
  std::printf("== Transactional replication (HARP-like) ==\n");
  {
    sim::Simulator s(7);
    net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                   sim::Duration::Millis(5)));
    std::vector<std::unique_ptr<net::Transport>> transports;
    std::vector<std::unique_ptr<txn::TxnReplica>> replicas;
    std::vector<net::NodeId> ids{1, 2, 3};
    for (net::NodeId id : ids) {
      transports.push_back(std::make_unique<net::Transport>(&s, &network, id));
      replicas.push_back(std::make_unique<txn::TxnReplica>(&s, transports.back().get()));
    }
    txn::TxnCoordinator coordinator(&s, transports[0].get(), ids);

    // 1. A grouped write: both keys or neither ("say together").
    coordinator.WriteMany({{"alice", 100.0}, {"bob", 50.0}}, [&](bool ok) {
      std::printf("  transfer committed: %s\n", ok ? "yes" : "no");
    });
    s.RunFor(sim::Duration::Seconds(1));
    std::printf("  replica 3 sees alice=%.0f bob=%.0f\n", *replicas[2]->Read("alice"),
                *replicas[2]->Read("bob"));

    // 2. A replica vetoes for a state-level reason: the group aborts
    //    atomically everywhere.
    replicas[1]->SetVoteHook([](const std::string& key) { return key != "quota-exceeded"; });
    coordinator.WriteMany({{"alice", 0.0}, {"quota-exceeded", 1.0}}, [&](bool ok) {
      std::printf("  vetoed group committed: %s (replica 2 rejected it)\n", ok ? "yes" : "no");
    });
    s.RunFor(sim::Duration::Seconds(1));
    std::printf("  alice still %.0f at every replica (no partial application)\n",
                *replicas[0]->Read("alice"));

    // 3. A replica dies: it is dropped from the availability list and writes
    //    keep committing with the survivors.
    network.SetNodeUp(3, false);
    coordinator.Write("carol", 9.0, [&](bool ok) {
      std::printf("  write with replica 3 down committed: %s\n", ok ? "yes" : "no");
    });
    s.RunFor(sim::Duration::Seconds(1));
    std::printf("  availability list now has %zu replicas\n",
                coordinator.availability_list().size());
  }

  std::printf("\n== CATOCS replication (Deceit-like), write-safety level 0 ==\n");
  {
    sim::Simulator s(8);
    catocs::FabricConfig config;
    config.num_members = 3;
    catocs::GroupFabric fabric(&s, config);
    std::vector<std::unique_ptr<txn::CatocsReplica>> replicas;
    for (size_t i = 0; i < 3; ++i) {
      replicas.push_back(
          std::make_unique<txn::CatocsReplica>(&s, &fabric.transport(i), &fabric.member(i)));
    }
    txn::CatocsPrimary primary(&s, &fabric.transport(0), &fabric.member(0), /*write_safety=*/0);
    fabric.StartAll();

    s.ScheduleAfter(sim::Duration::Millis(10), [&] {
      primary.Write("x", 1.0, [] { std::printf("  client: write x=1 acknowledged\n"); });
    });
    s.RunFor(sim::Duration::Seconds(1));
    std::printf("  replica 2 sees x=%.0f (asynchrony worked this time)\n",
                *replicas[1]->Read("x"));

    // Now the §2 failure: the primary acknowledges, then dies before a
    // single copy escapes.
    s.ScheduleAfter(sim::Duration::Millis(10), [&] {
      fabric.network().SetNodeUp(1, false);
      primary.Write("doomed", 2.0,
                    [] { std::printf("  client: write doomed=2 acknowledged\n"); });
      fabric.CrashMember(0);
    });
    s.RunFor(sim::Duration::Seconds(2));
    std::printf("  replica 2 sees doomed: %s  <- acknowledged data, gone for good\n",
                replicas[1]->Read("doomed") ? "yes" : "NO");
    std::printf("  (atomic delivery is not durable delivery — §2 of the paper)\n");
  }
  return 0;
}
