// View-synchronous membership example: watch a group live through a member
// crash (failure detection -> flush -> new view, with messages re-forwarded
// so every survivor ends at the same delivery cut) and then a dynamic join.
//
// The narrated costs — blocked sending during the flush, control messages,
// re-forwarded bytes — are the §5 membership overheads measured in
// bench_e10_membership.
//
// Run: ./build/examples/view_change

#include <cstdio>
#include <memory>
#include <string>

#include "src/catocs/group.h"

namespace {

net::PayloadPtr Msg(const std::string& text) {
  return std::make_shared<net::BlobPayload>(text, 64);
}

std::string Members(const catocs::View& view) {
  std::string out = "{";
  for (catocs::MemberId member : view.members) {
    out += std::to_string(member) + " ";
  }
  out.back() = '}';
  return out;
}

}  // namespace

int main() {
  sim::Simulator s(31);
  catocs::FabricConfig config;
  config.num_members = 4;
  config.group.enable_membership = true;
  config.group.heartbeat_interval = sim::Duration::Millis(20);
  config.group.failure_timeout = sim::Duration::Millis(120);
  catocs::GroupFabric fabric(&s, config);

  int delivered_at_1 = 0;
  fabric.member(0).SetDeliveryHandler([&](const catocs::Delivery&) { ++delivered_at_1; });
  for (size_t i = 0; i < fabric.size(); ++i) {
    const auto id = catocs::GroupFabric::IdOf(i);
    fabric.member(i).SetViewHandler([&, id](const catocs::View& view) {
      std::printf("  [%s] member %u installed view %llu with members %s\n",
                  s.now().ToString().c_str(), id,
                  static_cast<unsigned long long>(view.id), Members(view).c_str());
    });
  }
  fabric.StartAll();

  // Steady causal traffic from everyone.
  std::vector<std::unique_ptr<sim::PeriodicTimer>> senders;
  for (size_t i = 0; i < fabric.size(); ++i) {
    senders.push_back(std::make_unique<sim::PeriodicTimer>(&s, sim::Duration::Millis(25),
                                                           [&fabric, i] {
                                                             fabric.member(i).CausalSend(
                                                                 Msg("tick"));
                                                           }));
    senders.back()->Start(sim::Duration::Millis(5 * (i + 1)));
  }

  std::printf("t=0: four members, causal traffic flowing\n");
  s.ScheduleAfter(sim::Duration::Millis(400), [&] {
    std::printf("  [%s] member 4 crashes\n", s.now().ToString().c_str());
    senders[3]->Stop();
    fabric.CrashMember(3);
  });
  s.RunFor(sim::Duration::Seconds(2));

  const auto& stats = fabric.member(0).stats();
  std::printf("\nflush cost at member 1: %llu control msgs, %.1f KB re-forwarded, "
              "sends blocked %.1f ms\n",
              static_cast<unsigned long long>(stats.flush_control_msgs),
              static_cast<double>(stats.flush_payload_bytes) / 1024.0,
              static_cast<double>(stats.blocked_time.nanos()) / 1e6);

  // Now a new member joins through the flush protocol.
  net::Transport joiner_transport(&s, &fabric.network(), 9);
  catocs::GroupMember joiner(&s, &joiner_transport, config.group, 9, {9});
  joiner.SetViewHandler([&](const catocs::View& view) {
    std::printf("  [%s] joiner installed view %llu with members %s\n",
                s.now().ToString().c_str(), static_cast<unsigned long long>(view.id),
                Members(view).c_str());
  });
  int at_joiner = 0;
  joiner.SetDeliveryHandler([&](const catocs::Delivery&) { ++at_joiner; });
  joiner.Start();
  std::printf("\nmember 9 joins via member 1...\n");
  joiner.JoinGroup(1);
  s.RunFor(sim::Duration::Seconds(2));
  for (auto& sender : senders) {
    sender->Stop();
  }
  s.RunFor(sim::Duration::Seconds(1));

  std::printf("\npost-join: joiner delivered %d messages (history before the cut: none, "
              "by design)\n", at_joiner);
  std::printf("survivor view: %s | joiner view: %s\n",
              Members(fabric.member(0).view()).c_str(), Members(joiner.view()).c_str());
  return 0;
}
