// Trading floor example (Figure 4 of the paper, interactive form).
//
// An option-pricing service multicasts option prices; a theoretical-pricing
// service derives a theoretical price from each and multicasts it with a
// dependency field. A monitor shows two displays side by side:
//   RAW    — latest delivered values (what a CATOCS-fed screen shows);
//   PAIRED — each theoretical price with the base price it was derived from
//            (the paper's dependency-preserving display).
// Watch the RAW column occasionally invert the relation (theo <= opt): the
// "false crossing due to ordering anomaly" of Figure 4.
//
// Run: ./build/examples/trading_floor

#include <cstdio>
#include <map>
#include <memory>
#include <optional>

#include "src/catocs/group.h"

namespace {

class PriceUpdate : public net::Payload {
 public:
  PriceUpdate(bool is_theo, uint64_t version, double value, uint64_t dep)
      : is_theo_(is_theo), version_(version), value_(value), dep_(dep) {}
  size_t SizeBytes() const override { return 32; }
  std::string Describe() const override { return is_theo_ ? "theo" : "opt"; }
  bool is_theo() const { return is_theo_; }
  uint64_t version() const { return version_; }
  double value() const { return value_; }
  uint64_t dep() const { return dep_; }

 private:
  bool is_theo_;
  uint64_t version_;
  double value_;
  uint64_t dep_;
};

constexpr double kPremium = 0.75;

}  // namespace

int main() {
  sim::Simulator s(99);
  catocs::FabricConfig config;
  config.num_members = 3;  // 1 = option pricer, 2 = theoretical pricer, 3 = monitor
  config.latency_lo = sim::Duration::Millis(1);
  config.latency_hi = sim::Duration::Millis(9);
  catocs::GroupFabric fabric(&s, config);

  // Theoretical pricer: derive after a 4ms compute, publish with dependency.
  uint64_t theo_version = 0;
  fabric.member(1).SetDeliveryHandler([&](const catocs::Delivery& d) {
    const auto* update = net::PayloadCast<PriceUpdate>(d.payload());
    if (update == nullptr || update->is_theo()) {
      return;
    }
    const uint64_t base = update->version();
    const double theo = update->value() + kPremium;
    s.ScheduleAfter(sim::Duration::Millis(4), [&, base, theo] {
      fabric.member(1).CausalSend(std::make_shared<PriceUpdate>(true, ++theo_version, theo, base));
    });
  });

  // Monitor: print a tape line on every delivery.
  std::optional<double> raw_opt;
  uint64_t raw_opt_version = 0;
  std::optional<double> raw_theo;
  uint64_t raw_theo_dep = 0;
  std::map<uint64_t, double> history;  // version -> option price
  std::printf("%-10s %-7s | %-9s %-9s %-11s | %-9s %-9s\n", "time", "event", "RAW:opt",
              "RAW:theo", "RAW-status", "PAIR:base", "PAIR:theo");
  fabric.member(2).SetDeliveryHandler([&](const catocs::Delivery& d) {
    const auto* update = net::PayloadCast<PriceUpdate>(d.payload());
    if (update == nullptr) {
      return;
    }
    if (update->is_theo()) {
      raw_theo = update->value();
      raw_theo_dep = update->dep();
    } else {
      raw_opt = update->value();
      raw_opt_version = std::max(raw_opt_version, update->version());
      history[update->version()] = update->value();
    }
    const char* status = "-";
    if (raw_opt && raw_theo) {
      if (raw_theo_dep < raw_opt_version && *raw_theo <= *raw_opt) {
        status = "FALSE-CROSS";
      } else if (raw_theo_dep < raw_opt_version) {
        status = "stale-pair";
      } else {
        status = "ok";
      }
    }
    const double paired_base = history.count(raw_theo_dep) ? history[raw_theo_dep] : 0.0;
    std::printf("%-10s %-7s | %-9.2f %-9.2f %-11s | %-9.2f %-9.2f\n", s.now().ToString().c_str(),
                update->is_theo() ? "theo" : "opt", raw_opt.value_or(0.0), raw_theo.value_or(0.0),
                status, paired_base, raw_theo.value_or(0.0));
  });

  fabric.StartAll();

  // A short burst of option-price moves, 10ms apart.
  double price = 25.50;
  for (int i = 1; i <= 12; ++i) {
    s.ScheduleAfter(sim::Duration::Millis(10 * i), [&fabric, &price, i] {
      price += (i % 2 == 0) ? 0.50 : 0.25;
      fabric.member(0).CausalSend(
          std::make_shared<PriceUpdate>(false, static_cast<uint64_t>(i), price, 0));
    });
  }
  s.RunFor(sim::Duration::Seconds(2));
  std::printf("\nThe PAIRED display can lag, but (base, theo) is always a consistent pair:\n"
              "theo = base + %.2f by construction, so it can never show a false crossing.\n",
              kPremium);
  return 0;
}
