// Distributed deadlock monitor example (Appendix 9.2 of the paper).
//
// Two transaction managers run 2PL lock tables; their transactions acquire
// locks in opposite orders, creating a cross-node deadlock. Each node
// periodically multicasts its local wait-for edges (with a plain sequence
// number) to a monitor, which assembles the global graph and reports the
// cycle. No causal communication anywhere — 2PL wait-for deadlock is a
// locally stable property, so edge arrival order cannot matter and no false
// deadlock can be reported.
//
// Run: ./build/examples/deadlock_monitor

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/txn/deadlock_detector.h"
#include "src/txn/lock_manager.h"

int main() {
  sim::Simulator s(21);
  net::Network network(&s, std::make_unique<net::UniformLatency>(sim::Duration::Millis(1),
                                                                 sim::Duration::Millis(5)));
  net::Transport node_a(&s, &network, 1);
  net::Transport node_b(&s, &network, 2);
  net::Transport monitor_node(&s, &network, 9);

  // Each node has its own lock manager; global transaction ids are disjoint.
  txn::LockManager locks_a;
  txn::LockManager locks_b;

  // Reporters push each node's current local wait-for edges every 20ms.
  txn::WaitForReporter reporter_a(&s, &node_a, {9}, sim::Duration::Millis(20),
                                  [&] { return locks_a.WaitForEdges(); });
  txn::WaitForReporter reporter_b(&s, &node_b, {9}, sim::Duration::Millis(20),
                                  [&] { return locks_b.WaitForEdges(); });
  txn::DeadlockMonitor monitor(&s, &monitor_node);
  monitor.SetDeadlockHandler([&](const std::vector<uint64_t>& cycle) {
    std::printf("  [%s] monitor: DEADLOCK ", s.now().ToString().c_str());
    for (uint64_t node : cycle) {
      std::printf("T%llu -> ", static_cast<unsigned long long>(node));
    }
    std::printf("T%llu\n", static_cast<unsigned long long>(cycle.front()));
    // Resolution: abort the youngest transaction (largest id).
    uint64_t victim = 0;
    for (uint64_t t : cycle) {
      victim = std::max(victim, t);
    }
    std::printf("  monitor: aborting T%llu\n", static_cast<unsigned long long>(victim));
    locks_a.ReleaseAll(victim);
    locks_b.ReleaseAll(victim);
    reporter_a.ReportNow();
    reporter_b.ReportNow();
  });
  reporter_a.Start();
  reporter_b.Start();

  // The classic two-resource deadlock: T1 locks x (on A) then wants y (on
  // B); T2 locks y then wants x.
  std::printf("T1 locks x@A, T2 locks y@B...\n");
  locks_a.Acquire(1, "x", txn::LockMode::kExclusive, nullptr);
  locks_b.Acquire(2, "y", txn::LockMode::kExclusive, nullptr);
  s.ScheduleAfter(sim::Duration::Millis(30), [&] {
    std::printf("T1 requests y@B, T2 requests x@A — cross wait\n");
    locks_b.Acquire(1, "y", txn::LockMode::kExclusive,
                    [] { std::printf("  T1 finally got y\n"); });
    locks_a.Acquire(2, "x", txn::LockMode::kExclusive,
                    [] { std::printf("  T2 finally got x\n"); });
  });
  s.RunFor(sim::Duration::Seconds(1));
  reporter_a.Stop();
  reporter_b.Stop();
  std::printf("\nreports sent: %llu + %llu, deadlocks detected: %llu, "
              "graph edges remaining: %zu\n",
              static_cast<unsigned long long>(reporter_a.reports_sent()),
              static_cast<unsigned long long>(reporter_b.reports_sent()),
              static_cast<unsigned long long>(monitor.detections()),
              monitor.graph().edge_count());
  return 0;
}
