// Netnews reader example (§4.1 of the paper).
//
// Runs the same Usenet-style flooding workload twice — first with a raw
// arrival-order display, then with the paper's application-level fix: the
// local news database holds a response until the article named in its
// References field has arrived. Prints the summary the paper's argument
// predicts: misordered displays in the raw run, none in the References run,
// with the ordering state proportional to the inquiries actually involved.
//
// Run: ./build/examples/netnews_reader

#include <cstdio>

#include "src/apps/netnews.h"

int main() {
  apps::NetnewsConfig config;
  config.inquiries = 120;
  config.response_probability = 0.7;
  config.seed = 3;

  std::printf("Usenet flooding network: %d servers, %d inquiries, responses posted at\n"
              "remote sites, per-link batching up to %s.\n\n",
              config.servers, config.inquiries, config.forward_delay_max.ToString().c_str());

  config.strategy = apps::NewsStrategy::kFloodingRaw;
  const apps::NetnewsResult raw = RunNetnewsScenario(config);
  std::printf("1. Raw display (today's Usenet):\n");
  std::printf("   responses: %d, displayed before their inquiry: %d\n", raw.responses,
              raw.out_of_order_displays);
  std::printf("   mean display latency: %.1f ms (p99 %.1f ms)\n\n", raw.mean_display_latency_ms,
              raw.p99_display_latency_ms);

  config.strategy = apps::NewsStrategy::kFloodingReferences;
  const apps::NetnewsResult refs = RunNetnewsScenario(config);
  std::printf("2. References-field display (the paper's state-level fix):\n");
  std::printf("   responses: %d, displayed before their inquiry: %d\n", refs.responses,
              refs.out_of_order_displays);
  std::printf("   responses held until their inquiry arrived: %llu\n",
              static_cast<unsigned long long>(refs.gate_holds));
  std::printf("   mean display latency: %.1f ms (p99 %.1f ms)\n\n", refs.mean_display_latency_ms,
              refs.p99_display_latency_ms);

  config.strategy = apps::NewsStrategy::kCatocsGroup;
  const apps::NetnewsResult group = RunNetnewsScenario(config);
  std::printf("3. One causal group for the whole newsgroup (the CATOCS proposal):\n");
  std::printf("   responses: %d, displayed before their inquiry: %d\n", group.responses,
              group.out_of_order_displays);
  std::printf("   network bytes: %.1f KB vs %.1f KB for flooding — and the communication\n"
              "   system now tracks ordering state for every message, not just the\n"
              "   inquiries this reader cares about (the paper's scaling objection).\n",
              static_cast<double>(group.network_bytes) / 1024.0,
              static_cast<double>(raw.network_bytes) / 1024.0);
  return 0;
}
