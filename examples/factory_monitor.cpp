// Factory monitoring example (§4.6 of the paper).
//
// An oven's temperature is monitored over a lossy factory network. The same
// physical process and the same loss rate are monitored two ways:
//   * through a CATOCS causal group (every reading reliable and ordered —
//     and therefore late whenever anything is retransmitted);
//   * as timestamped datagrams where the monitor keeps the freshest reading
//     and simply drops stale or lost ones ("sufficient consistency").
// Prints the tracking error of both, which is what correctness means for a
// monitoring system.
//
// Run: ./build/examples/factory_monitor

#include <cstdio>

#include "src/apps/oven.h"

int main() {
  std::printf("Oven temperature monitoring, 10ms sampling, 4 chatter sensors sharing the\n"
              "group, 10%% packet loss, 30 simulated seconds per strategy.\n\n");
  apps::OvenConfig config;
  config.duration = sim::Duration::Seconds(30);
  config.drop_probability = 0.10;
  config.seed = 5;

  config.strategy = apps::OvenStrategy::kCatocsCausal;
  const apps::OvenResult catocs = RunOvenScenario(config);
  config.strategy = apps::OvenStrategy::kTimestampFreshest;
  const apps::OvenResult fresh = RunOvenScenario(config);

  std::printf("%-26s %12s %12s %12s %14s\n", "strategy", "mean err", "p99 err", "max err",
              "mean delay");
  std::printf("%-26s %10.2f C %10.2f C %10.2f C %11.1f us\n", "catocs-causal",
              catocs.mean_abs_error, catocs.p99_abs_error, catocs.max_abs_error,
              catocs.mean_delivery_delay_us);
  std::printf("%-26s %10.2f C %10.2f C %10.2f C %11.1f us\n", "timestamp-freshest",
              fresh.mean_abs_error, fresh.p99_abs_error, fresh.max_abs_error,
              fresh.mean_delivery_delay_us);
  std::printf("\nreadings applied: catocs %llu/%llu (all, eventually), freshest %llu/%llu\n",
              static_cast<unsigned long long>(catocs.readings_applied),
              static_cast<unsigned long long>(catocs.readings_sent),
              static_cast<unsigned long long>(fresh.readings_applied),
              static_cast<unsigned long long>(fresh.readings_sent));
  std::printf("\nThe ordered view is consistent with message history; the timestamped view is\n"
              "consistent with the oven. For a control system only the second one matters.\n");
  return 0;
}
