// Quickstart: a tour of the library's public API.
//
// Builds a five-member CATOCS process group on a simulated lossy network,
// demonstrates causal and totally ordered multicast (and what each does and
// does not guarantee), inspects the protocol's cost counters, and then shows
// the state-level alternative the paper advocates: an order-preserving cache
// driven by version numbers — no ordered multicast anywhere.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <string>

#include "src/catocs/group.h"
#include "src/statelevel/ordered_cache.h"

namespace {

net::PayloadPtr Msg(const std::string& text) {
  return std::make_shared<net::BlobPayload>(text, text.size());
}

std::string TextOf(const catocs::Delivery& d) {
  const auto* blob = net::PayloadCast<net::BlobPayload>(d.payload());
  return blob ? blob->tag() : "?";
}

}  // namespace

int main() {
  std::printf("== 1. A process group over a jittery, lossy network ==\n");
  // The simulator is deterministic: same seed, same run, everywhere.
  sim::Simulator s(/*seed=*/2024);

  catocs::FabricConfig config;
  config.num_members = 5;
  config.network.drop_probability = 0.05;               // 5%% packet loss
  config.latency_lo = sim::Duration::Millis(1);          // per-packet delay
  config.latency_hi = sim::Duration::Millis(12);         // (uniform jitter)
  catocs::GroupFabric fabric(&s, config);

  // Every member gets a delivery handler. Member 0 also *reacts* to what it
  // receives, creating a genuine causal chain.
  for (size_t i = 0; i < fabric.size(); ++i) {
    const auto id = catocs::GroupFabric::IdOf(i);
    fabric.member(i).SetDeliveryHandler([&, id, i](const catocs::Delivery& d) {
      if (i == 4) {  // narrate one member's view
        std::printf("  member %u delivered %-22s (mode=%s, waited %s in delay queue)\n", id,
                    TextOf(d).c_str(), ToString(d.mode()), d.causal_delay.ToString().c_str());
      }
      if (i == 0 && TextOf(d) == "question") {
        fabric.member(0).CausalSend(Msg("answer"));  // caused by "question"
      }
    });
  }
  fabric.StartAll();

  // Causal multicast: "answer" can never arrive before "question" anywhere.
  s.ScheduleAfter(sim::Duration::Millis(5), [&] { fabric.member(1).CausalSend(Msg("question")); });
  s.RunFor(sim::Duration::Seconds(2));

  std::printf("\n== 2. Totally ordered multicast ==\n");
  // Five concurrent sends: causal multicast would impose no order at all;
  // abcast delivers them in one agreed sequence everywhere.
  for (size_t i = 0; i < fabric.size(); ++i) {
    fabric.member(i).TotalSend(Msg("bid-from-" + std::to_string(i + 1)));
  }
  s.RunFor(sim::Duration::Seconds(2));

  std::printf("\n== 3. What the ordering machinery cost ==\n");
  const auto& stats = fabric.member(4).stats();
  std::printf("  member 5: %llu delivered, %llu held back for causal predecessors "
              "(%.1f ms total), %llu ordering-header bytes sent\n",
              static_cast<unsigned long long>(stats.app_delivered),
              static_cast<unsigned long long>(stats.delayed_deliveries),
              static_cast<double>(stats.total_causal_delay.nanos()) / 1e6,
              static_cast<unsigned long long>(stats.ordering_header_bytes));
  std::printf("  peak atomic-delivery buffer: %zu messages (%zu bytes)\n",
              fabric.member(4).peak_buffered_messages(), fabric.member(4).peak_buffered_bytes());

  std::printf("\n== 4. The state-level alternative: versioned updates ==\n");
  // No ordered multicast: receivers order by the version number carried in
  // the state itself. Arrival order is irrelevant by construction.
  statelv::OrderedCache cache;
  statelv::VersionedUpdate stop;
  stop.object = "lot-A";
  stop.version = 2;
  stop.value = 0.0;  // 0 = stopped
  statelv::VersionedUpdate start;
  start.object = "lot-A";
  start.version = 1;
  start.value = 1.0;  // 1 = processing
  cache.Apply(stop);   // the *later* update arrives first...
  cache.Apply(start);  // ...and the stale one is simply dropped
  std::printf("  applied out of order; cache shows lot-A version %llu (stale drops: %llu)\n",
              static_cast<unsigned long long>(cache.Get("lot-A")->version),
              static_cast<unsigned long long>(cache.stats().stale_dropped));
  std::printf("\nDone. See examples/trading_floor.cpp and examples/replicated_kv.cpp for the\n"
              "paper's application scenarios, and bench/ for the full experiment suite.\n");
  return 0;
}
