#!/usr/bin/env bash
# Regenerates BENCH_micro.json: Release build of the microbenchmark suite,
# run with google-benchmark's JSON reporter. Run on an otherwise idle machine;
# results land at the repo root so they can be diffed across commits.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-rel}
OUT=${OUT:-BENCH_micro.json}

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_micro_protocol
"${BUILD_DIR}/bench/bench_micro_protocol" \
  --benchmark_out="${OUT}" --benchmark_out_format=json
echo "wrote ${OUT}"
