#!/usr/bin/env bash
# Regenerates BENCH_micro.json: Release build of the microbenchmark suite
# plus the E18 sustained-throughput bench, run with google-benchmark's JSON
# reporter and merged into one file. Also regenerates BENCH_e22.json (the
# E22 concurrency-control contention sweep, which emits its own
# google-benchmark-shaped JSON via --json). Run on an otherwise idle machine;
# results land at the repo root so they can be diffed across commits with
# scripts/bench_compare.py (or the bench-compare cmake target).
#
# Numbers recorded from a debug binary are garbage and poison every later
# comparison, so this script configures Release explicitly and refuses to
# write the JSON unless the binary itself reports a release build (each
# bench main stamps "repro_build_type" into the benchmark context from
# NDEBUG — the truth of how the binary was compiled, not of what cmake was
# asked for).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-rel}
OUT=${OUT:-BENCH_micro.json}
OUT_E22=${OUT_E22:-BENCH_e22.json}

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_micro_protocol bench_e18_throughput bench_e22_contention

# Runs one bench binary into $2, refusing to keep output from a debug build.
# The check reads "repro_build_type" — stamped by each bench main from
# NDEBUG, i.e. how *our* code in the binary was actually compiled. (The
# library's own "library_build_type" reflects the preinstalled
# google-benchmark package, which we cannot rebuild and which only does the
# timing.)
record() {
  local bin="$1" out="$2"
  "${bin}" --benchmark_out="${out}" --benchmark_out_format=json
  if ! grep -q '"repro_build_type": "release"' "${out}"; then
    rm -f "${out}"
    echo "bench.sh: ${bin} is not a release build; refusing to write ${OUT}" >&2
    echo "bench.sh: (assertions change hot-path costs — rebuild with CMAKE_BUILD_TYPE=Release)" >&2
    exit 1
  fi
}

TMP_MICRO="$(mktemp "${OUT}.micro.XXXXXX")"
TMP_E18="$(mktemp "${OUT}.e18.XXXXXX")"
TMP_E22="$(mktemp "${OUT_E22}.XXXXXX")"
trap 'rm -f "${TMP_MICRO}" "${TMP_E18}" "${TMP_E22}"' EXIT

record "${BUILD_DIR}/bench/bench_micro_protocol" "${TMP_MICRO}"
record "${BUILD_DIR}/bench/bench_e18_throughput" "${TMP_E18}"

# E22 writes google-benchmark-shaped JSON itself (it is a sweep harness, not
# a google-benchmark registration), including the repro_build_type stamp the
# release check below reads.
"${BUILD_DIR}/bench/bench_e22_contention" --json "${TMP_E22}"
if ! grep -q '"repro_build_type": "release"' "${TMP_E22}"; then
  echo "bench.sh: bench_e22_contention is not a release build; refusing to write ${OUT_E22}" >&2
  exit 1
fi

# Recording identity, stamped into the JSON context alongside the binaries'
# own repro_build_type: the commit the numbers came from, and the bench
# configuration knobs (batch/delta/buffer — "sweep" means the suite varies
# the knob itself; override via BENCH_BATCH/BENCH_DELTA/BENCH_BUFFER when
# recording a pinned-config run). bench_compare.py refuses to diff files
# whose configs differ — cross-config deltas are configuration changes, not
# regressions.
GIT_SHA="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
if ! git diff --quiet HEAD 2>/dev/null; then
  GIT_SHA="${GIT_SHA}-dirty"
fi
BENCH_CONFIG="batch=${BENCH_BATCH:-sweep};delta=${BENCH_DELTA:-sweep};buffer=${BENCH_BUFFER:-full}"

# Two tracked files: the micro suite's JSON with E18's benchmark entries
# appended (context comes from the micro run; both were just verified to be
# release builds of the same tree), and E22's sweep in its own file — its
# cells are a different workload shape and are gated on their own counters.
python3 - "${TMP_MICRO}" "${TMP_E18}" "${OUT}" "${GIT_SHA}" "${BENCH_CONFIG}" <<'EOF'
import json, sys
micro, e18, out, sha, config = sys.argv[1:6]
with open(micro) as f:
    doc = json.load(f)
with open(e18) as f:
    doc["benchmarks"].extend(json.load(f)["benchmarks"])
doc.setdefault("context", {})["repro_git_sha"] = sha
doc["context"]["repro_bench_config"] = config
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
python3 - "${TMP_E22}" "${OUT_E22}" "${GIT_SHA}" "${BENCH_CONFIG}" <<'EOF'
import json, sys
src, out, sha, config = sys.argv[1:5]
with open(src) as f:
    doc = json.load(f)
doc.setdefault("context", {})["repro_git_sha"] = sha
doc["context"]["repro_bench_config"] = config
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
echo "wrote ${OUT} and ${OUT_E22} (${GIT_SHA}, ${BENCH_CONFIG})"
