#!/usr/bin/env bash
# Provenance gate (DESIGN.md §8, E19): the fixed-seed Perfetto export from
# bench_e19_provenance must be byte-deterministic across two runs, and the
# offline analyzer (scripts/trace_analyze.py) must compute the same summary
# hash from both exports. Invoked by scripts/check.sh and the
# check-provenance cmake target. Reuses an existing build if one is
# configured.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_e19_provenance

prov_a="$(mktemp --suffix=.json)"
prov_b="$(mktemp --suffix=.json)"
trap 'rm -f "${prov_a}" "${prov_b}"' EXIT
"${BUILD_DIR}/bench/bench_e19_provenance" --trace-out="${prov_a}" > /dev/null
"${BUILD_DIR}/bench/bench_e19_provenance" --trace-out="${prov_b}" > /dev/null
if ! cmp -s "${prov_a}" "${prov_b}"; then
  echo "provenance_gate: trace export differs between identical runs" >&2
  exit 1
fi
hash_a=$(python3 scripts/trace_analyze.py "${prov_a}" | tail -1)
hash_b=$(python3 scripts/trace_analyze.py "${prov_b}" | tail -1)
if [[ -z "${hash_a}" || "${hash_a}" != "${hash_b}" ]]; then
  echo "provenance_gate: summary hashes diverged: ${hash_a} vs ${hash_b}" >&2
  exit 1
fi
echo "provenance_gate: export deterministic (${hash_a})"
