#!/usr/bin/env bash
# Long-partition soak (DESIGN.md §10): the chaos fuzzer with overload
# adversity on a stretched horizon, so each plan's long partition (held for
# a multiple of the failure timeout before healing) plays out against
# bounded budgets, a send window, and the crash/rejoin machinery — with
# room left after the heal for the wedged minority to crash-rejoin and for
# retention to drain. Every seed replays bit-identically and the oracle
# audits bounded memory (no cap overruns, no pressure-epoch regressions)
# alongside the usual ordering/view/state invariants. Reuses an existing
# build if one is configured.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SEEDS=${SEEDS:-5}
START=${START:-1}
HORIZON_MS=${HORIZON_MS:-20000}
SLOTS=${SLOTS:-4}
BUFFERS=${BUFFERS:-full hybrid}
POLICY=${POLICY:-throttle}

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target fuzz_chaos

for buffer in ${BUFFERS}; do
  "${BUILD_DIR}/bench/fuzz_chaos" --seeds "${SEEDS}" --start "${START}" \
    --slots "${SLOTS}" --horizon-ms "${HORIZON_MS}" \
    --buffer "${buffer}" --overload --policy "${POLICY}"
done
