#!/usr/bin/env python3
"""Diff two google-benchmark JSON files and fail on regressions.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Benchmarks are matched by name. For each pair the real_time delta is
reported; any benchmark slower than the threshold (default 10%) fails the
comparison with exit code 1. Benchmarks present on only one side are listed
but never fail the run (new benchmarks appear, retired ones disappear —
that is growth, not regression).

Benchmarks that report a metadata_bytes_per_msg counter (E18, tracking the
wire overhead figure E21 sweeps against N) get a second check: the counter
is a deterministic byte count, not a timing, so it is held to a tight 1%
growth bound — header-format regressions hide inside timing noise but not
inside byte counts.

Benchmarks that report abort_rate / commits_per_s counters (E22, the
concurrency-control contention sweep) are gated on those too: the simulator
is deterministic, so a drift beyond the threshold in EITHER direction of
abort_rate means the conflict-resolution behavior changed, and a
commits_per_s drop beyond the threshold is a throughput regression even
when the latency column stays flat (commits can slow down collectively
without moving the per-commit mean).

Both files must come from release builds: bench mains stamp
"repro_build_type" into the context, and comparing debug numbers against
release numbers (or debug against debug) is meaningless, so anything except
release/release is rejected.

Files recorded by scripts/bench.sh also stamp "repro_bench_config"
(batch/delta/buffer knobs) and "repro_git_sha". Two files with different
configs are never compared — a cross-config delta measures the config, not
the code. Files recorded before the stamp existed carry no config and are
tolerated with a warning.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    context = doc.get("context", {})
    build_type = context.get("repro_build_type")
    if build_type != "release":
        sys.exit(
            f"bench_compare: {path} was recorded from a "
            f"{build_type or 'unknown'} build, not release — re-record with "
            "scripts/bench.sh"
        )
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repeated runs); the raw
        # iterations carry run_type "iteration" or no run_type at all.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = bench
    return out, context


def check_configs(baseline_path, base_ctx, current_path, cur_ctx):
    """Refuse cross-config comparisons; tolerate pre-stamp recordings."""
    base_cfg = base_ctx.get("repro_bench_config")
    cur_cfg = cur_ctx.get("repro_bench_config")
    if base_cfg is None or cur_cfg is None:
        for path, cfg in ((baseline_path, base_cfg), (current_path, cur_cfg)):
            if cfg is None:
                print(
                    f"bench_compare: warning: {path} predates the config "
                    "stamp; cannot verify both runs used the same config",
                    file=sys.stderr,
                )
        return
    if base_cfg != cur_cfg:
        sys.exit(
            "bench_compare: refusing cross-config comparison:\n"
            f"  {baseline_path}: {base_cfg}\n"
            f"  {current_path}: {cur_cfg}\n"
            "re-record one side with matching BENCH_BATCH/BENCH_DELTA/"
            "BENCH_BUFFER"
        )
    base_sha = base_ctx.get("repro_git_sha", "unknown")
    cur_sha = cur_ctx.get("repro_git_sha", "unknown")
    print(f"config {base_cfg}: {base_sha} -> {cur_sha}")


def fmt_time(bench):
    return f"{bench['real_time']:.1f} {bench.get('time_unit', 'ns')}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail when real_time regresses more than PCT percent (default 10)",
    )
    args = parser.parse_args()

    base, base_ctx = load(args.baseline)
    cur, cur_ctx = load(args.current)
    check_configs(args.baseline, base_ctx, args.current, cur_ctx)

    regressions = []
    shared = sorted(set(base) & set(cur))
    for name in shared:
        b, c = base[name], cur[name]
        if b["real_time"] <= 0:
            continue
        delta_pct = (c["real_time"] - b["real_time"]) / b["real_time"] * 100.0
        marker = " "
        if delta_pct > args.threshold:
            marker = "!"
            regressions.append((name, delta_pct))
        print(
            f"{marker} {name:<55} {fmt_time(b):>14} -> {fmt_time(c):>14} "
            f"({delta_pct:+.1f}%)"
        )
        # Deterministic wire-overhead counter: any growth beyond rounding is
        # a header-format change, so the bound is 1% regardless of the
        # timing threshold.
        b_meta = b.get("metadata_bytes_per_msg")
        c_meta = c.get("metadata_bytes_per_msg")
        if b_meta and c_meta:
            meta_pct = (c_meta - b_meta) / b_meta * 100.0
            meta_marker = " "
            if meta_pct > 1.0:
                meta_marker = "!"
                regressions.append((f"{name} [metadata_bytes_per_msg]", meta_pct))
            print(
                f"{meta_marker} {name + ' [metadata B/msg]':<55} "
                f"{b_meta:>14.1f} -> {c_meta:>14.1f} ({meta_pct:+.1f}%)"
            )
        # E22 contention counters. abort_rate drift in either direction is a
        # behavior change (the sim is deterministic); commits_per_s only
        # regresses downward.
        b_ab, c_ab = b.get("abort_rate"), c.get("abort_rate")
        if b_ab is not None and c_ab is not None:
            if b_ab > 0:
                ab_pct = (c_ab - b_ab) / b_ab * 100.0
            else:
                ab_pct = 0.0 if c_ab == 0 else float("inf")
            ab_marker = " "
            if abs(ab_pct) > args.threshold:
                ab_marker = "!"
                regressions.append((f"{name} [abort_rate]", ab_pct))
            print(
                f"{ab_marker} {name + ' [abort rate]':<55} "
                f"{b_ab:>14.4f} -> {c_ab:>14.4f} ({ab_pct:+.1f}%)"
            )
        b_tp, c_tp = b.get("commits_per_s"), c.get("commits_per_s")
        if b_tp and c_tp is not None:
            tp_pct = (c_tp - b_tp) / b_tp * 100.0
            tp_marker = " "
            if tp_pct < -args.threshold:
                tp_marker = "!"
                regressions.append((f"{name} [commits_per_s]", tp_pct))
            print(
                f"{tp_marker} {name + ' [commits/s]':<55} "
                f"{b_tp:>14.1f} -> {c_tp:>14.1f} ({tp_pct:+.1f}%)"
            )

    for name in sorted(set(cur) - set(base)):
        print(f"+ {name:<55} {'new':>14} -> {fmt_time(cur[name]):>14}")
    for name in sorted(set(base) - set(cur)):
        print(f"- {name:<55} {fmt_time(base[name]):>14} -> {'gone':>14}")

    if not shared:
        sys.exit("bench_compare: no benchmarks in common — wrong files?")
    if regressions:
        print(
            f"\nbench_compare: {len(regressions)} benchmark(s) regressed "
            f"more than {args.threshold:.0f}%:",
            file=sys.stderr,
        )
        for name, pct in regressions:
            print(f"  {name}: {pct:+.1f}%", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_compare: {len(shared)} shared benchmarks within {args.threshold:.0f}%")


if __name__ == "__main__":
    main()
