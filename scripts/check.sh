#!/usr/bin/env bash
# Sanitizer gate: builds the whole tree with ASan+UBSan in a separate build
# directory, runs the full test suite under it, then runs the chaos seed
# sweep (scripts/chaos.sh) against the same sanitized build. Slower than the
# default build — use before merging protocol or simulator changes.
set -euo pipefail

cd "$(dirname "$0")/.."

# Cheap gates first: formatting (no-op where clang-format is unavailable).
./scripts/lint.sh

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# Chaos smoke under the sanitized binaries: a reduced seed sweep keeps the
# gate fast while still exercising crash/rejoin/state-transfer under ASan.
BUILD_DIR="${BUILD_DIR}" SEEDS="${CHAOS_SEEDS:-10}" ./scripts/chaos.sh
