#!/usr/bin/env bash
# Sanitizer gate: builds the whole tree with ASan+UBSan in a separate build
# directory, runs the full test suite under it, then runs the chaos seed
# sweep (scripts/chaos.sh) against the same sanitized build. Slower than the
# default build — use before merging protocol or simulator changes.
set -euo pipefail

cd "$(dirname "$0")/.."

# Cheap gates first: formatting (no-op where clang-format is unavailable).
./scripts/lint.sh

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# Chaos smoke under the sanitized binaries: a reduced seed sweep keeps the
# gate fast while still exercising crash/rejoin/state-transfer under ASan —
# including the overload-policy legs (chaos.sh POLICIES).
BUILD_DIR="${BUILD_DIR}" SEEDS="${CHAOS_SEEDS:-10}" ./scripts/chaos.sh

# Long-partition soak, reduced for the gate: a couple of stretched-horizon
# seeds so a partition held past the failure timeout (plus the heal,
# rejoin, and retention drain after it) runs under ASan with the
# bounded-memory oracle on.
BUILD_DIR="${BUILD_DIR}" SEEDS="${SOAK_SEEDS:-2}" ./scripts/soak.sh

# Scale smoke: the overlay causal path at N=1024 under churn and N=4096
# quiescent (E21 acceptance cells). Deliberately NOT under the sanitized
# build — at a million deliveries per cell ASan turns minutes into hours —
# so it uses the default build directory; the protocol logic it runs is
# identical to what the sanitized ctest suite already covered at small N.
./scripts/scale_smoke.sh

# Observability smoke: the traced fuzzer must stay deterministic — two
# identical --trace invocations produce byte-identical output (span and hold
# totals included) — and the reduced sweep must come back clean.
TRACE_SEEDS="${TRACE_SEEDS:-5}"
trace_a=$("${BUILD_DIR}/bench/fuzz_chaos" --seeds "${TRACE_SEEDS}" --trace)
trace_b=$("${BUILD_DIR}/bench/fuzz_chaos" --seeds "${TRACE_SEEDS}" --trace)
if [[ "${trace_a}" != "${trace_b}" ]]; then
  echo "check.sh: fuzz_chaos --trace output diverged between identical runs" >&2
  diff <(printf '%s\n' "${trace_a}") <(printf '%s\n' "${trace_b}") >&2 || true
  exit 1
fi
if ! grep -q "trace spans=" <<<"${trace_a}"; then
  echo "check.sh: fuzz_chaos --trace did not report span totals" >&2
  exit 1
fi
if ! grep -q "${TRACE_SEEDS}/${TRACE_SEEDS} seeds clean" <<<"${trace_a}"; then
  echo "check.sh: fuzz_chaos --trace sweep reported failures" >&2
  printf '%s\n' "${trace_a}" >&2
  exit 1
fi
echo "check.sh: fuzz_chaos --trace deterministic over ${TRACE_SEEDS} seeds"

# Provenance gate: the fixed-seed Perfetto export must be byte-deterministic
# and the offline analyzer's summary hash stable across two independent
# exports (scripts/trace_analyze.py; DESIGN.md §8, E19) — under the
# sanitized build, like everything else in this gate.
BUILD_DIR="${BUILD_DIR}" ./scripts/provenance_gate.sh

# Perf is gated separately (sanitized numbers are meaningless): record with
# scripts/bench.sh, then diff against the committed baseline via
# scripts/bench_compare.py or the bench-compare cmake target.
echo "check.sh: perf not checked here — run scripts/bench.sh + scripts/bench_compare.py (bench-compare target) for the >10% regression gate"
