#!/usr/bin/env bash
# Scale gate: runs the E21 smoke cells — the overlay causal path at N=1024
# with join/leave churn, and N=4096 quiescent — against a normal (non-
# sanitized) build. bench_e21_scale --smoke exits nonzero if any causal-order
# violation is observed or the ordering metadata exceeds 32 bytes per
# transmitted copy, so this catches both correctness and metadata-growth
# regressions in the constant-metadata path at sizes the unit tests never
# reach. Wall-clock budget is a few minutes (the N=4096 cell dominates).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target bench_e21_scale

"${BUILD_DIR}/bench/bench_e21_scale" --smoke
