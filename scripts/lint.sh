#!/usr/bin/env bash
# Formatting gate: clang-format --dry-run over the C++ tree, using the
# repo-root .clang-format (Google style, 100 cols). Skips with a notice when
# clang-format is not installed (the reference container does not ship it),
# so CI environments without the tool still pass the full check pipeline.
#
# By default formatting drift is a warning; set LINT_STRICT=1 to make it
# fail the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "lint: clang-format not found; skipping format check" >&2
  exit 0
fi

mapfile -t files < <(find src bench tests -name '*.cc' -o -name '*.h' | sort)
if [[ ${#files[@]} -eq 0 ]]; then
  echo "lint: no sources found" >&2
  exit 1
fi

echo "lint: clang-format --dry-run over ${#files[@]} files ($(clang-format --version))"
if clang-format --dry-run -Werror --style=file "${files[@]}"; then
  echo "lint: clean"
  exit 0
fi

if [[ "${LINT_STRICT:-0}" == "1" ]]; then
  echo "lint: formatting drift (LINT_STRICT=1, failing)" >&2
  exit 1
fi
echo "lint: formatting drift (warning only; run clang-format -i, or set LINT_STRICT=1 to enforce)" >&2
exit 0
