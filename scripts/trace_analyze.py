#!/usr/bin/env python3
"""Offline analyzer for the Chrome trace-event exports (DESIGN.md §8, E19).

Usage: trace_analyze.py TRACE.json [TRACE.json ...]

Reads a trace written by Simulator::ExportTraceEvents (e.g. via
bench_e19_provenance --trace-out=FILE) and recomputes the false-causality
tax from the trace alone — slices plus provenance flow arrows — without any
access to the recorder that produced it:

  * every "X" slice in a delivery-gating layer (causal, fifo, total-order,
    membership) is a wait some message paid at some member;
  * a wait is *necessary* iff a transitive semantic predecessor of the
    message (following "semantic" and "hidden" flow arrows) was delivered at
    that member inside the wait window — the wait bought an ordering the
    application asked for;
  * everything else is false causality: the §2 spurious-delay tax.

Prints the tax per layer and per member (pid), the provenance edge counts,
and a deterministic sha256 over the summary — two runs of the same fixed
seed must print the same hash (the check.sh provenance gate diffs them).
"""

import hashlib
import json
import sys

GATING_LAYERS = ("causal", "fifo", "total-order", "membership")
SEMANTIC_KINDS = ("semantic", "hidden")


def load_events(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"trace_analyze: cannot read {path}: {err}")
    events = doc.get("traceEvents")
    if events is None:
        sys.exit(f"trace_analyze: {path} has no traceEvents array")
    return events


def nanos(ts_micros):
    # ts is micros with .001 resolution; recover exact integer nanos.
    return round(ts_micros * 1000)


def analyze(path):
    events = load_events(path)

    # (key, pid) -> sorted delivery times. Any "deliver" event counts: the
    # causal layer's stage-1 deliver and fifo's app deliver, matching the
    # recorder's rule that a wait ending on causal arrival of a predecessor
    # is necessary even if that predecessor is still gated downstream.
    deliveries = {}
    # Gating-layer waits: (key, pid, layer, entered_ns, released_ns).
    holds = []
    # dst key -> set of src keys, following semantic + hidden arrows.
    semantic = {}
    edge_counts = {}

    for ev in events:
        ph = ev.get("ph")
        args = ev.get("args", {})
        if ph == "s" or ph == "f":
            kind = ev.get("name", "")
            if ph == "s":
                edge_counts[kind] = edge_counts.get(kind, 0) + 1
                if kind in SEMANTIC_KINDS:
                    semantic.setdefault(args["dst_key"], set()).add(args["src_key"])
            continue
        if ph not in ("X", "i"):
            continue
        key = args.get("key")
        if key is None:
            continue
        layer = ev.get("cat", "")
        pid = ev.get("pid")
        end_ns = nanos(ev["ts"]) + (nanos(ev.get("dur", 0)) if ph == "X" else 0)
        if args.get("event") == "deliver":
            deliveries.setdefault((key, pid), []).append(end_ns)
        if ph == "X" and layer in GATING_LAYERS and ev.get("dur", 0) > 0:
            holds.append((key, pid, layer, nanos(ev["ts"]), end_ns))

    for times in deliveries.values():
        times.sort()

    # Transitive semantic predecessors, memoized per key.
    closure = {}

    def preds_of(key):
        done = closure.get(key)
        if done is not None:
            return done
        out = set()
        stack = list(semantic.get(key, ()))
        while stack:
            p = stack.pop()
            if p in out or p == key:
                continue
            out.add(p)
            stack.extend(semantic.get(p, ()))
        closure[key] = out
        return out

    layer_tax = {}  # layer -> [holds, false_holds, hold_ns, false_ns]
    pid_tax = {}  # pid -> [holds, false_holds, hold_ns, false_ns]

    def delivered_within(pred, pid, lo, hi):
        for t in deliveries.get((pred, pid), ()):
            if lo < t <= hi:
                return True
        return False

    for key, pid, layer, entered, released in holds:
        necessary = any(
            delivered_within(pred, pid, entered, released) for pred in preds_of(key)
        )
        dur = released - entered
        for table, slot in ((layer_tax, layer), (pid_tax, pid)):
            row = table.setdefault(slot, [0, 0, 0, 0])
            row[0] += 1
            row[2] += dur
            if not necessary:
                row[1] += 1
                row[3] += dur

    lines = []
    lines.append(
        "edges: "
        + " ".join(f"{k}={edge_counts.get(k, 0)}" for k in ("semantic", "hidden", "spurious"))
    )
    lines.append(
        f"{'layer':<14} {'holds':>8} {'false':>8} {'hold_ms':>12} {'false_ms':>12} {'false_frac':>10}"
    )

    def tax_lines(table, label_of):
        for slot in sorted(table):
            holds_n, false_n, hold_ns, false_ns = table[slot]
            frac = (false_ns / hold_ns) if hold_ns else 0.0
            lines.append(
                f"{label_of(slot):<14} {holds_n:>8} {false_n:>8} "
                f"{hold_ns / 1e6:>12.3f} {false_ns / 1e6:>12.3f} {frac:>10.3f}"
            )

    tax_lines(layer_tax, lambda layer: layer)
    lines.append(
        f"{'member':<14} {'holds':>8} {'false':>8} {'hold_ms':>12} {'false_ms':>12} {'false_frac':>10}"
    )
    tax_lines(pid_tax, lambda pid: f"pid={pid}")

    total = [0, 0, 0, 0]
    for row in layer_tax.values():
        for i in range(4):
            total[i] += row[i]
    frac = (total[3] / total[2]) if total[2] else 0.0
    lines.append(
        f"total: holds={total[0]} false={total[1]} hold_ms={total[2] / 1e6:.3f} "
        f"false_ms={total[3] / 1e6:.3f} false_frac={frac:.3f}"
    )
    return lines


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__.strip())
    # The hash covers only the analysis lines, never the file names: the same
    # trace bytes must hash identically wherever the file happens to live.
    summary = []
    for i, path in enumerate(sys.argv[1:]):
        print(f"== trace {i}: {path} ==")
        lines = analyze(path)
        summary.extend(lines)
        for line in lines:
            print(line)
    digest = hashlib.sha256("\n".join(summary).encode("utf-8")).hexdigest()
    print(f"summary_hash={digest}")


if __name__ == "__main__":
    main()
