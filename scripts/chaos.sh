#!/usr/bin/env bash
# Chaos gate: runs the deterministic simulation fuzzer over 50 generated
# fault schedules (crashes with rejoin + state transfer, sub-timeout
# partitions, drop/duplicate bursts, latency spikes), with every seed run
# twice and required to produce a bit-identical trace hash. Any invariant
# violation, replay divergence, or wedged rejoin fails the sweep (nonzero
# exit). The sweep runs once per causal-buffer strategy (full-vector and
# hybrid) and once per sender-batching level (unbatched and batch=8, which
# also turns on delta timestamps and a burst workload) so both retention
# implementations and both wire paths face the same fault schedules.
# Reuses an existing build if one is configured.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SEEDS=${SEEDS:-50}
START=${START:-1}
BUFFERS=${BUFFERS:-full hybrid}
BATCHES=${BATCHES:-1 8}

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target fuzz_chaos

for buffer in ${BUFFERS}; do
  for batch in ${BATCHES}; do
    "${BUILD_DIR}/bench/fuzz_chaos" --seeds "${SEEDS}" --start "${START}" \
      --buffer "${buffer}" --batch "${batch}"
  done
done
