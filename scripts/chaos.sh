#!/usr/bin/env bash
# Chaos gate: runs the deterministic simulation fuzzer over 50 generated
# fault schedules (crashes with rejoin + state transfer, sub-timeout
# partitions, drop/duplicate bursts, latency spikes), with every seed run
# twice and required to produce a bit-identical trace hash. Any invariant
# violation, replay divergence, or wedged rejoin fails the sweep (nonzero
# exit). The sweep runs once per causal-buffer strategy (full-vector,
# hybrid, and the constant-metadata overlay path, which forces a
# causal-only workload — kTotal is outside its contract — and ignores the
# batching knob), once per sender-batching level (unbatched and batch=8, which
# also turns on delta timestamps and a burst workload), and once per trace
# mode (observability off and --trace) so the record-only instrumentation
# faces every buffer x batch combination under the same fault schedules.
# A final leg runs the hidden-channel probe (--probe), whose per-seed
# recorder-vs-oracle cross-check fails the sweep on any disagreement.
# An overload leg (--overload) then sweeps the DESIGN §10 overload policies
# (POLICIES, default all three) per buffer strategy: slow receivers,
# overload bursts, and a long partition per plan, under a bounded budget +
# send window, with the oracle auditing every budget sample for cap
# overruns and pressure-epoch regressions.
# A transactional leg (bench_e22_contention --chaos) then crashes one
# replica mid-run under each deadlock policy (TXN_POLICIES); the oracle
# replays the coordinators' commit log against every surviving replica's
# store, so a lost, phantom, or duplicated commit — or a txn that never
# decides — fails the seed. Each seed runs twice and must match.
# Reuses an existing build if one is configured.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SEEDS=${SEEDS:-50}
START=${START:-1}
BUFFERS=${BUFFERS:-full hybrid overlay}
BATCHES=${BATCHES:-1 8}
TRACES=${TRACES:-off on}
POLICIES=${POLICIES:-throttle shed-new evict-laggard}
TXN_SEEDS=${TXN_SEEDS:-10}
TXN_POLICIES=${TXN_POLICIES:-detect wait-die starvation-free}

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target fuzz_chaos bench_e22_contention

for buffer in ${BUFFERS}; do
  for batch in ${BATCHES}; do
    for trace in ${TRACES}; do
      trace_flag=()
      if [[ "${trace}" == on ]]; then
        trace_flag=(--trace)
      fi
      "${BUILD_DIR}/bench/fuzz_chaos" --seeds "${SEEDS}" --start "${START}" \
        --buffer "${buffer}" --batch "${batch}" "${trace_flag[@]}"
    done
  done
done

# Hidden-channel probe under the same fault schedules: probe tokens are real
# traffic (their own replay-verified trace hashes), and any recorder/oracle
# hidden-miss disagreement fails the seed.
"${BUILD_DIR}/bench/fuzz_chaos" --seeds "${SEEDS}" --start "${START}" --probe

# Overload sweep: bounded budget + send window against slow receivers,
# overload bursts, and long partitions, once per buffer x overload policy.
for buffer in ${BUFFERS}; do
  for policy in ${POLICIES}; do
    "${BUILD_DIR}/bench/fuzz_chaos" --seeds "${SEEDS}" --start "${START}" \
      --buffer "${buffer}" --overload --policy "${policy}"
  done
done

# Transactional crash sweep: every deadlock policy must decide every txn and
# leave every surviving replica's store equal to the commit-log replay.
for policy in ${TXN_POLICIES}; do
  "${BUILD_DIR}/bench/bench_e22_contention" --chaos --seeds "${TXN_SEEDS}" \
    --policy "${policy}"
done
